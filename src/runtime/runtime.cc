#include "runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "obs/obs.h"

namespace mm2::runtime {

using instance::Instance;
using instance::Tuple;
using instance::Value;

bool Delta::Empty() const {
  return inserts.TotalTuples() == 0 && deletes.TotalTuples() == 0;
}

std::size_t Delta::Size() const {
  return inserts.TotalTuples() + deletes.TotalTuples();
}

std::string Delta::ToString() const {
  std::string out;
  for (const auto& [name, rel] : inserts.relations()) {
    for (const Tuple& t : rel.tuples()) {
      out += "+" + name + instance::TupleToString(t) + "\n";
    }
  }
  for (const auto& [name, rel] : deletes.relations()) {
    for (const Tuple& t : rel.tuples()) {
      out += "-" + name + instance::TupleToString(t) + "\n";
    }
  }
  return out;
}

Delta DiffInstances(const Instance& before, const Instance& after) {
  Delta delta;
  delta.inserts = after.Minus(before);
  delta.deletes = before.Minus(after);
  return delta;
}

Status ApplyDelta(const Delta& delta, Instance* db) {
  for (const auto& [name, rel] : delta.deletes.relations()) {
    for (const Tuple& t : rel.tuples()) {
      MM2_RETURN_IF_ERROR(db->Erase(name, t));
    }
  }
  for (const auto& [name, rel] : delta.inserts.relations()) {
    if (!db->HasRelation(name)) db->DeclareRelation(name, rel.arity());
    for (const Tuple& t : rel.tuples()) {
      MM2_RETURN_IF_ERROR(db->Insert(name, t));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MaterializedView
// ---------------------------------------------------------------------------

MaterializedView::MaterializedView(std::string name, algebra::ExprRef view,
                                   algebra::Catalog catalog)
    : name_(std::move(name)),
      view_(std::move(view)),
      catalog_(std::move(catalog)) {}

Result<algebra::Table> MaterializedView::EvalOver(const Instance& db) const {
  return algebra::Evaluate(*view_, catalog_, db);
}

Status MaterializedView::Initialize(const Instance& base) {
  MM2_ASSIGN_OR_RETURN(current_, EvalOver(base));
  return Status::OK();
}

namespace {

bool TreeIsMonotonePipeline(const algebra::Expr& expr) {
  switch (expr.kind()) {
    case algebra::Expr::Kind::kScan:
      return true;
    case algebra::Expr::Kind::kSelect:
    case algebra::Expr::Kind::kProject:
    case algebra::Expr::Kind::kUnion: {
      for (const algebra::ExprRef& c : expr.children()) {
        if (!TreeIsMonotonePipeline(*c)) return false;
      }
      return true;
    }
    // Joins and difference are not per-row maintainable; Distinct loses
    // multiplicities; aggregates need group re-evaluation; Const would
    // leak its rows into delta evaluation.
    case algebra::Expr::Kind::kConst:
    case algebra::Expr::Kind::kJoin:
    case algebra::Expr::Kind::kDifference:
    case algebra::Expr::Kind::kDistinct:
    case algebra::Expr::Kind::kAggregate:
      return false;
  }
  return false;
}

// Removes one occurrence of each row of `rows` from `table`.
void RemoveRows(const std::vector<Tuple>& rows, algebra::Table* table) {
  for (const Tuple& row : rows) {
    for (auto it = table->rows.begin(); it != table->rows.end(); ++it) {
      if (*it == row) {
        table->rows.erase(it);
        break;
      }
    }
  }
}

Delta TableDelta(const std::string& name, const algebra::Table& before,
                 const algebra::Table& after) {
  // Set-semantics diff for notification purposes: sort + dedup both sides
  // once, then two linear set_difference passes — same enumeration order a
  // std::set rebuild produced (sorted), without the per-node allocations.
  std::vector<Tuple> b = before.rows;
  std::vector<Tuple> a = after.rows;
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::vector<Tuple> inserted;
  std::vector<Tuple> deleted;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(inserted));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(deleted));
  Delta delta;
  delta.inserts.DeclareRelation(name, after.columns.size());
  delta.deletes.DeclareRelation(name, before.columns.size());
  for (const Tuple& t : inserted) delta.inserts.InsertUnchecked(name, t);
  for (const Tuple& t : deleted) delta.deletes.InsertUnchecked(name, t);
  return delta;
}

}  // namespace

bool MaterializedView::IsIncrementallyMaintainable() const {
  return TreeIsMonotonePipeline(*view_);
}

Result<Delta> MaterializedView::Update(const Instance& new_base,
                                       const Delta& base_delta) {
  if (IsIncrementallyMaintainable()) {
    // Monotone pipeline over set-semantics bases: the view image of the
    // base inserts/deletes IS the view delta, row for row — O(|delta|),
    // never touching the rest of the view.
    MM2_ASSIGN_OR_RETURN(algebra::Table plus,
                         EvalOver(base_delta.inserts));
    MM2_ASSIGN_OR_RETURN(algebra::Table minus,
                         EvalOver(base_delta.deletes));
    RemoveRows(minus.rows, &current_);
    Delta delta;
    delta.inserts.DeclareRelation(name_, current_.columns.size());
    delta.deletes.DeclareRelation(name_, current_.columns.size());
    for (Tuple& row : plus.rows) {
      delta.inserts.InsertUnchecked(name_, row);
      current_.rows.push_back(std::move(row));
    }
    for (Tuple& row : minus.rows) {
      delta.deletes.InsertUnchecked(name_, std::move(row));
    }
    return delta;
  }
  algebra::Table before = std::move(current_);
  MM2_ASSIGN_OR_RETURN(current_, EvalOver(new_base));
  return TableDelta(name_, before, current_);
}

// ---------------------------------------------------------------------------
// UpdatePropagator
// ---------------------------------------------------------------------------

UpdatePropagator::UpdatePropagator(
    transgen::CompiledViews views,
    std::vector<modelgen::MappingFragment> fragments, model::Schema er,
    model::Schema relational)
    : views_(std::move(views)),
      fragments_(std::move(fragments)),
      er_(std::move(er)),
      relational_(std::move(relational)) {}

Result<std::optional<std::pair<std::string, Tuple>>> UpdatePropagator::RowFor(
    const modelgen::MappingFragment& fragment, const Tuple& entity) const {
  using RowOpt = std::optional<std::pair<std::string, Tuple>>;
  if (fragment.entity_set != views_.entity_set) return RowOpt{};
  const std::string& type = entity[0].str();
  if (std::find(fragment.types.begin(), fragment.types.end(), type) ==
      fragment.types.end()) {
    return RowOpt{};
  }
  const model::Relation* table = relational_.FindRelation(fragment.table);
  if (table == nullptr) {
    return Status::Internal("fragment table '" + fragment.table +
                            "' missing");
  }
  Tuple row;
  row.reserve(table->arity());
  for (const model::Attribute& column : table->attributes()) {
    if (column.name == fragment.discriminator_column) {
      row.push_back(entity[0]);
      continue;
    }
    const std::string* attr = nullptr;
    for (const auto& [a, c] : fragment.attribute_map) {
      if (c == column.name) attr = &a;
    }
    if (attr == nullptr) {
      row.push_back(Value::Null());
      continue;
    }
    std::size_t idx = layout_.ColumnIndex(*attr);
    if (idx == instance::EntitySetLayout::kNpos) {
      return Status::Internal("fragment attribute '" + *attr +
                              "' missing from layout");
    }
    row.push_back(entity[1 + idx]);
  }
  return std::make_optional(std::make_pair(fragment.table, std::move(row)));
}

Status UpdatePropagator::Initialize(const Instance& entities) {
  const model::EntitySet* set = er_.FindEntitySet(views_.entity_set);
  if (set == nullptr) {
    return Status::NotFound("entity set '" + views_.entity_set +
                            "' not in ER schema");
  }
  MM2_ASSIGN_OR_RETURN(layout_,
                       instance::ComputeEntitySetLayout(er_, *set));
  entities_ = entities;
  tables_ = Instance();
  MM2_RETURN_IF_ERROR(transgen::ApplyUpdateViews(views_, er_, relational_,
                                                 entities_, &tables_));
  // Build per-table row reference counts: how many entities produce each
  // materialized row (DISTINCT semantics need the count to know when a
  // row truly disappears).
  row_counts_.clear();
  const instance::RelationInstance* extent =
      entities_.Find(views_.entity_set);
  if (extent != nullptr) {
    for (const Tuple& entity : extent->tuples()) {
      for (const modelgen::MappingFragment& fragment : fragments_) {
        MM2_ASSIGN_OR_RETURN(auto row, RowFor(fragment, entity));
        if (row.has_value()) ++row_counts_[row->first][row->second];
      }
    }
  }
  return Status::OK();
}

Result<std::map<std::string, Delta>> UpdatePropagator::Apply(
    const EntityOp& op) {
  // 1. Apply the entity operation to the extent.
  switch (op.kind) {
    case EntityOp::Kind::kInsert:
      MM2_RETURN_IF_ERROR(entities_.Insert(views_.entity_set, op.entity));
      break;
    case EntityOp::Kind::kDelete:
      MM2_RETURN_IF_ERROR(entities_.Erase(views_.entity_set, op.entity));
      break;
  }
  // 2. Incremental propagation: only the fragments covering this entity's
  // type contribute rows; reference counts decide visibility transitions.
  std::map<std::string, Delta> deltas;
  for (const modelgen::MappingFragment& fragment : fragments_) {
    MM2_ASSIGN_OR_RETURN(auto row, RowFor(fragment, op.entity));
    if (!row.has_value()) continue;
    const std::string& table = row->first;
    std::map<Tuple, std::size_t>& counts = row_counts_[table];
    Delta& delta = deltas[table];
    if (op.kind == EntityOp::Kind::kInsert) {
      if (++counts[row->second] == 1) {
        if (!tables_.HasRelation(table)) {
          tables_.DeclareRelation(table, row->second.size());
        }
        tables_.InsertUnchecked(table, row->second);
        if (!delta.inserts.HasRelation(table)) {
          delta.inserts.DeclareRelation(table, row->second.size());
        }
        delta.inserts.InsertUnchecked(table, row->second);
      }
    } else {
      auto it = counts.find(row->second);
      if (it == counts.end() || it->second == 0) {
        return Status::Internal("row count underflow on table '" + table +
                                "'");
      }
      if (--it->second == 0) {
        counts.erase(it);
        MM2_RETURN_IF_ERROR(tables_.Erase(table, row->second));
        if (!delta.deletes.HasRelation(table)) {
          delta.deletes.DeclareRelation(table, row->second.size());
        }
        delta.deletes.InsertUnchecked(table, row->second);
      }
    }
  }
  // Drop empty deltas, notify the rest.
  for (auto it = deltas.begin(); it != deltas.end();) {
    if (it->second.Empty()) {
      it = deltas.erase(it);
    } else {
      for (const TableListener& listener : listeners_) {
        listener(it->first, it->second);
      }
      ++it;
    }
  }
  return deltas;
}

void UpdatePropagator::Subscribe(TableListener listener) {
  listeners_.push_back(std::move(listener));
}

// ---------------------------------------------------------------------------
// ErrorTranslator
// ---------------------------------------------------------------------------

ErrorTranslator::ErrorTranslator(
    std::vector<modelgen::MappingFragment> fragments)
    : fragments_(std::move(fragments)) {}

std::string ErrorTranslator::EntityAttributeFor(
    const std::string& table, const std::string& column) const {
  for (const modelgen::MappingFragment& f : fragments_) {
    if (f.table != table) continue;
    for (const auto& [attr, col] : f.attribute_map) {
      if (col == column) return attr;
    }
  }
  return "";
}

std::string ErrorTranslator::Translate(const std::string& table,
                                       const std::string& column,
                                       const std::string& message) const {
  std::string attr = EntityAttributeFor(table, column);
  if (attr.empty()) {
    return "error on table " + table + "." + column + ": " + message +
           " (no entity-level mapping)";
  }
  // Which entity types does this touch?
  std::string types;
  for (const modelgen::MappingFragment& f : fragments_) {
    if (f.table != table) continue;
    for (const std::string& t : f.types) {
      if (!types.empty()) types += ", ";
      types += t;
    }
  }
  return "error on attribute " + attr + " of {" + types + "} (stored in " +
         table + "." + column + "): " + message;
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

std::string ExplainFact(const chase::ChaseResult& result,
                        const chase::Fact& fact) {
  const std::vector<chase::Witness>* witnesses =
      result.provenance.WitnessesOf(fact);
  if (witnesses == nullptr || witnesses->empty()) {
    return fact.ToString() + " has no recorded derivation";
  }
  std::string out = fact.ToString() + " because:\n";
  for (const chase::Witness& w : *witnesses) {
    out += "  <-";
    for (const chase::Fact& f : w) out += " " + f.ToString();
    out += "\n";
  }
  return out;
}

std::vector<chase::Fact> Lineage(const chase::ChaseResult& result,
                                 const chase::Fact& fact) {
  std::vector<chase::Fact> lineage;
  const std::vector<chase::Witness>* witnesses =
      result.provenance.WitnessesOf(fact);
  if (witnesses == nullptr) return lineage;
  std::set<chase::Fact> seen;
  for (const chase::Witness& w : *witnesses) {
    for (const chase::Fact& f : w) {
      if (seen.insert(f).second) lineage.push_back(f);
    }
  }
  return lineage;
}

// ---------------------------------------------------------------------------
// Exchange
// ---------------------------------------------------------------------------

Result<ExchangeResult> Exchange(const logic::Mapping& mapping,
                                const Instance& source,
                                const ExchangeOptions& options) {
  obs::ObsSpan span(options.obs, "exchange.run");
  span.SetAttribute("mapping", mapping.name());
  span.SetAttribute("source_tuples", source.TotalTuples());
  chase::ChaseOptions chase_options;
  chase_options.track_provenance = options.track_provenance;
  chase_options.naive = options.naive;
  chase_options.semi_naive = options.semi_naive;
  chase_options.stratified = options.stratified;
  chase_options.threads = options.threads;
  chase_options.storage = options.storage;
  chase_options.wall_budget_us = options.wall_budget_us;
  chase_options.tuple_budget = options.tuple_budget;
  chase_options.rss_budget_kb = options.rss_budget_kb;
  chase_options.cancel = options.cancel;
  chase_options.obs = options.obs;
  MM2_ASSIGN_OR_RETURN(chase::ChaseResult chased,
                       chase::RunChase(mapping, source, chase_options));
  ExchangeResult result;
  result.stats = chased.stats;
  result.provenance = std::move(chased.provenance);
  result.breach = std::move(chased.breach);
  // A breached chase produced a partial (non-universal) solution; core
  // minimization of it would be wasted work on a wrong premise, so keep
  // the partial target as-is for post-mortem inspection.
  if (options.compute_core && !result.breach.has_value()) {
    result.pre_core_tuples = chased.target.TotalTuples();
    result.target = chase::ComputeCore(chased.target, options.obs,
                                       options.threads, options.cancel);
  } else {
    result.target = std::move(chased.target);
  }
  span.SetAttribute("target_tuples", result.target.TotalTuples());
  if (result.breach.has_value()) {
    span.SetAttribute("breach", result.breach->kind);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Incremental exchange
// ---------------------------------------------------------------------------

namespace {

chase::ChaseOptions SessionChaseOptions(const ExchangeOptions& options) {
  chase::ChaseOptions copts;
  // Provenance is the deletion substrate; sessions always record it.
  copts.track_provenance = true;
  copts.naive = options.naive;
  copts.semi_naive = options.semi_naive;
  copts.stratified = options.stratified;
  copts.threads = options.threads;
  copts.storage = options.storage;
  copts.wall_budget_us = options.wall_budget_us;
  copts.tuple_budget = options.tuple_budget;
  copts.rss_budget_kb = options.rss_budget_kb;
  copts.cancel = options.cancel;
  copts.obs = options.obs;
  return copts;
}

// True if any fact of any recorded unification witness is in `facts`.
bool JournalTouches(const std::vector<chase::Witness>& journal,
                    const std::set<chase::Fact>& facts) {
  for (const chase::Witness& witness : journal) {
    for (const chase::Fact& fact : witness) {
      if (facts.count(fact) != 0) return true;
    }
  }
  return false;
}

void AdoptChaseResult(ExchangeSession* session, chase::ChaseResult chased) {
  session->target = std::move(chased.target);
  session->provenance = std::move(chased.provenance);
  session->last_stats = chased.stats;
  session->breach = std::move(chased.breach);
}

}  // namespace

Result<ExchangeSession> BeginExchangeSession(const logic::Mapping& mapping,
                                             instance::Instance source,
                                             const ExchangeOptions& options) {
  if (options.compute_core) {
    return Status::Unsupported(
        "incremental exchange maintains the canonical universal solution; "
        "the core is not delta-maintainable (use Exchange for one-shot core "
        "computation)");
  }
  ExchangeSession session;
  session.mapping = mapping;
  session.source = std::move(source);
  session.options = options;
  session.options.track_provenance = true;
  // Same span as Exchange: telemetry consumers see one "exchange.run" per
  // from-scratch chase, session-opening or not.
  obs::ObsSpan span(options.obs, "exchange.run");
  span.SetAttribute("mapping", mapping.name());
  span.SetAttribute("source_tuples", session.source.TotalTuples());
  MM2_ASSIGN_OR_RETURN(
      chase::ChaseResult chased,
      chase::ResumeChase(session.mapping, session.source,
                         Instance::EmptyFor(mapping.target()),
                         chase::Provenance{}, &session.state,
                         /*net_change=*/nullptr,
                         SessionChaseOptions(session.options)));
  AdoptChaseResult(&session, std::move(chased));
  span.SetAttribute("target_tuples", session.target.TotalTuples());
  if (session.breach.has_value()) {
    span.SetAttribute("breach", session.breach->kind);
  }
  return session;
}

Result<Delta> MaintainExchange(ExchangeSession& session,
                               const Delta& source_delta) {
  const auto start = std::chrono::steady_clock::now();
  obs::Context* obs = session.options.obs;
  obs::ObsSpan span(obs, "exchange.maintain");
  span.SetAttribute("mapping", session.mapping.name());
  span.SetAttribute("delta_size", source_delta.Size());

  // A breached session holds a partial solution and a dead frontier;
  // resuming it would maintain the wrong baseline.
  const bool poisoned = session.breach.has_value() || !session.state.initialized;

  // Source deletions first (mirroring ApplyDelta), collecting the facts
  // actually removed — deletes of absent tuples are no-ops.
  std::set<chase::Fact> dead;
  for (const auto& [name, rel] : source_delta.deletes.relations()) {
    for (const Tuple& t : rel.tuples()) {
      if (session.source.Erase(name, t).ok()) {
        dead.insert(chase::Fact{name, t});
      }
    }
  }

  // DRed, step 1: decide whether deletions are incrementally answerable.
  // A deleted fact that justified an egd/SO-equality unification licensed a
  // null merge we cannot cheaply unwind — rebuild instead.
  bool fallback = poisoned;
  std::set<chase::Fact> candidates;  // the DRed over-estimate
  std::size_t counting_kept = 0;
  if (!fallback && !dead.empty()) {
    fallback = JournalTouches(session.state.unification_witnesses, dead);
  }
  if (!fallback && !dead.empty()) {
    // Step 2: prune the witnesses that used a dead fact, walking only the
    // facts the support index names for the dead set — O(|delta| * fanout),
    // never O(|target|). Session provenance is complete (probe-satisfied
    // triggers record witnesses too), so a fact left with no witness is
    // genuinely underivable and needs no re-derive chase; facts with a
    // surviving witness are kept with zero chase work (counting shortcut).
    // Inverted index for the prune: target fact -> the dead facts that
    // actually point at it. A hot fact with many witnesses (think an
    // existential head over a low-cardinality key) is then checked against
    // its own two-or-three relevant dead facts instead of the whole dead
    // set — the witness sweep costs equality probes, not set lookups.
    std::map<chase::Fact, std::vector<const chase::Fact*>> affected;
    for (const chase::Fact& d : dead) {
      auto it = session.state.dependents.find(d);
      if (it == session.state.dependents.end()) continue;
      for (const chase::Fact& t : it->second) affected[t].push_back(&d);
      session.state.dependents.erase(it);
    }
    auto& entries = session.provenance.mutable_entries();
    for (const auto& [fact, relevant] : affected) {
      auto it = entries.find(fact);
      if (it == entries.end()) continue;  // stale index entry: already gone
      std::vector<chase::Witness>& witnesses = it->second;
      const std::size_t before = witnesses.size();
      witnesses.erase(
          std::remove_if(witnesses.begin(), witnesses.end(),
                         [&](const chase::Witness& w) {
                           for (const chase::Fact& f : w) {
                             for (const chase::Fact* d : relevant) {
                               if (f == *d) return true;
                             }
                           }
                           return false;
                         }),
          witnesses.end());
      if (witnesses.empty()) {
        candidates.insert(it->first);
        entries.erase(it);
      } else if (witnesses.size() != before) {
        ++counting_kept;
      }
    }
    // An over-estimated fact that itself witnessed a unification forces the
    // rebuild too: erasing it would leave merged nulls unjustified.
    fallback = JournalTouches(session.state.unification_witnesses, candidates);
  }

  // Source insertions (idempotent: re-inserting a present tuple is a no-op
  // and must not pollute the delta log the resumed chase reads).
  std::size_t source_inserts = 0;
  for (const auto& [name, rel] : source_delta.inserts.relations()) {
    for (const Tuple& t : rel.tuples()) {
      if (!session.source.HasRelation(name)) {
        session.source.DeclareRelation(name, t.size());
      }
      const instance::RelationInstance* existing = session.source.Find(name);
      if (existing != nullptr && existing->Contains(t)) continue;
      // The session's null counter must stay ahead of labels arriving via
      // the delta itself, or the resumed chase (which trusts the counter
      // instead of rescanning the instances) could re-invent one.
      for (const instance::Value& v : t) {
        if (v.is_labeled_null() && v.label() >= session.state.next_label) {
          session.state.next_label = v.label() + 1;
        }
      }
      MM2_RETURN_IF_ERROR(session.source.Insert(name, t));
      ++source_inserts;
    }
  }

  Delta out;
  if (fallback) {
    // Wholesale path: re-chase the mutated source from scratch and report
    // the instance diff. Null labels are re-invented, so the diff may pair
    // a delete and an insert that differ only in labels.
    Instance old_target = std::move(session.target);
    session.state = chase::ChaseSessionState{};
    MM2_ASSIGN_OR_RETURN(
        chase::ChaseResult chased,
        chase::ResumeChase(session.mapping, session.source,
                           Instance::EmptyFor(session.mapping.target()),
                           chase::Provenance{}, &session.state,
                           /*net_change=*/nullptr,
                           SessionChaseOptions(session.options)));
    AdoptChaseResult(&session, std::move(chased));
    out.inserts = session.target.Minus(old_target);
    out.deletes = old_target.Minus(session.target);
  } else {
    // Step 3: erase the over-estimate (seeding the net delta). Complete
    // provenance makes this a true deletion — nothing can re-derive an
    // erased fact, so no rule re-pass is scoped. The resumed chase only
    // matches insertions above the old watermarks (semi-naive deltas) and
    // re-checks egds against them.
    chase::FactDelta net;
    for (const chase::Fact& fact : candidates) {
      if (session.target.Erase(fact.relation, fact.tuple).ok()) {
        --net[fact];
      }
    }
    MM2_ASSIGN_OR_RETURN(
        chase::ChaseResult chased,
        chase::ResumeChase(session.mapping, session.source,
                           std::move(session.target),
                           std::move(session.provenance), &session.state,
                           &net, SessionChaseOptions(session.options)));
    AdoptChaseResult(&session, std::move(chased));
    // Net counts collapse churn: a fact erased by DRed and re-derived (or
    // rewritten away and back by an egd) sums to zero and is not reported.
    for (const auto& [fact, count] : net) {
      if (count == 0) continue;
      Instance& side = count > 0 ? out.inserts : out.deletes;
      if (!side.HasRelation(fact.relation)) {
        side.DeclareRelation(fact.relation, fact.tuple.size());
      }
      side.InsertUnchecked(fact.relation, fact.tuple);
    }
  }

  ++session.maintains;
  if (fallback) ++session.fallbacks;
  if (obs != nullptr) {
    obs::MetricsRegistry& m = obs->metrics;
    m.GetCounter("chase.incremental.maintains").Increment();
    if (fallback) m.GetCounter("chase.incremental.fallbacks").Increment();
    m.GetCounter("chase.incremental.dred_candidates")
        .Increment(candidates.size());
    m.GetCounter("chase.incremental.dred_kept").Increment(counting_kept);
    m.GetCounter("chase.incremental.source_inserts").Increment(source_inserts);
    m.GetCounter("chase.incremental.source_deletes").Increment(dead.size());
    m.GetCounter("chase.incremental.target_inserts")
        .Increment(out.inserts.TotalTuples());
    m.GetCounter("chase.incremental.target_deletes")
        .Increment(out.deletes.TotalTuples());
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    m.GetCounter("chase.incremental.latency_us")
        .Increment(static_cast<std::uint64_t>(elapsed.count()));
  }
  span.SetAttribute("target_inserts", out.inserts.TotalTuples());
  span.SetAttribute("target_deletes", out.deletes.TotalTuples());
  span.SetAttribute("fallback", fallback ? 1 : 0);
  if (session.breach.has_value()) {
    span.SetAttribute("breach", session.breach->kind);
  }
  return out;
}

}  // namespace mm2::runtime
