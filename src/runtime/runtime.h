#ifndef MM2_RUNTIME_RUNTIME_H_
#define MM2_RUNTIME_RUNTIME_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include <optional>

#include "algebra/eval.h"
#include "chase/chase.h"
#include "common/result.h"
#include "instance/instance.h"
#include "logic/mapping.h"
#include "modelgen/modelgen.h"
#include "transgen/transgen.h"

namespace mm2::obs {
struct Context;
}

namespace mm2::runtime {

// ---------------------------------------------------------------------------
// Deltas
// ---------------------------------------------------------------------------

// A set-semantics change: tuples to insert and tuples to delete, per
// relation. The runtime services of Section 5 (update propagation,
// notifications, view maintenance) all speak deltas.
struct Delta {
  instance::Instance inserts;
  instance::Instance deletes;

  bool Empty() const;
  std::size_t Size() const;
  std::string ToString() const;
};

// after - before, per relation (relations present in either side).
Delta DiffInstances(const instance::Instance& before,
                    const instance::Instance& after);

// Applies a delta in place (deletes first, then inserts).
Status ApplyDelta(const Delta& delta, instance::Instance* db);

// ---------------------------------------------------------------------------
// Materialized views and notifications (Section 5: "Notifications" /
// "Data exchange")
// ---------------------------------------------------------------------------

// A materialized algebra view over a base database. Update() recomputes
// against a new base state and reports the view delta — the notification a
// target-side cache would receive. Selections, projections and unions are
// maintained incrementally from the base delta; other operators fall back
// to recompute-and-diff.
class MaterializedView {
 public:
  MaterializedView(std::string name, algebra::ExprRef view,
                   algebra::Catalog catalog);

  const std::string& name() const { return name_; }
  const algebra::Table& current() const { return current_; }

  // Full evaluation against `base`.
  Status Initialize(const instance::Instance& base);

  // Brings the view in line with `new_base`, given the delta from the
  // previously seen base state; returns the view-side delta.
  Result<Delta> Update(const instance::Instance& new_base,
                       const Delta& base_delta);

  // True if the view tree supports incremental maintenance (select /
  // project / union-all / distinct over a single scan pipeline).
  bool IsIncrementallyMaintainable() const;

 private:
  Result<algebra::Table> EvalOver(const instance::Instance& db) const;

  std::string name_;
  algebra::ExprRef view_;
  algebra::Catalog catalog_;
  algebra::Table current_;
};

// ---------------------------------------------------------------------------
// Update propagation through compiled views (Section 5: "Update
// propagation"; the ADO.NET client-view runtime)
// ---------------------------------------------------------------------------

// An object-at-a-time update on an entity set.
struct EntityOp {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  // Full entity tuple in layout order ($type first).
  instance::Tuple entity;
};

// Listener invoked with per-table deltas after each propagated update.
using TableListener =
    std::function<void(const std::string& table, const Delta& delta)>;

// Maintains an entity extent and its table images in lock-step: entity
// operations are translated through the mapping fragments into table
// deltas (which subscribers observe), keeping roundtripping intact
// throughout. Propagation is incremental — O(#fragments covering the
// entity's type) per operation, not O(|D|): a per-table row reference
// count (built once at Initialize) decides exactly when a DISTINCT view
// row appears or disappears.
class UpdatePropagator {
 public:
  UpdatePropagator(transgen::CompiledViews views,
                   std::vector<modelgen::MappingFragment> fragments,
                   model::Schema er, model::Schema relational);

  // Materializes the initial table state from `entities` and builds the
  // row reference counts.
  Status Initialize(const instance::Instance& entities);

  // Applies one entity operation; returns the per-table deltas.
  Result<std::map<std::string, Delta>> Apply(const EntityOp& op);

  void Subscribe(TableListener listener);

  const instance::Instance& entities() const { return entities_; }
  const instance::Instance& tables() const { return tables_; }

 private:
  // The table row fragment `f` stores for `entity`, or nullopt when the
  // fragment does not cover the entity's type.
  Result<std::optional<std::pair<std::string, instance::Tuple>>> RowFor(
      const modelgen::MappingFragment& fragment,
      const instance::Tuple& entity) const;

  transgen::CompiledViews views_;
  std::vector<modelgen::MappingFragment> fragments_;
  model::Schema er_;
  model::Schema relational_;
  instance::EntitySetLayout layout_;
  instance::Instance entities_;
  instance::Instance tables_;
  // table -> row -> number of entities producing it.
  std::map<std::string, std::map<instance::Tuple, std::size_t>> row_counts_;
  std::vector<TableListener> listeners_;
};

// ---------------------------------------------------------------------------
// Error translation (Section 5: "Errors")
// ---------------------------------------------------------------------------

// Rewrites a table-context error into entity-context terms using the
// mapping fragments: "Empl.Dept violates X" becomes "Employee.Dept (stored
// in table Empl, column Dept) violates X".
class ErrorTranslator {
 public:
  explicit ErrorTranslator(std::vector<modelgen::MappingFragment> fragments);

  // The entity-side name for a table column, or empty when unmapped.
  std::string EntityAttributeFor(const std::string& table,
                                 const std::string& column) const;

  // Full error translation with context.
  std::string Translate(const std::string& table, const std::string& column,
                        const std::string& message) const;

 private:
  std::vector<modelgen::MappingFragment> fragments_;
};

// ---------------------------------------------------------------------------
// Provenance (Section 5: "Provenance" / "Debugging")
// ---------------------------------------------------------------------------

// Renders the why-provenance of a target fact from a chase result: each
// witness is the list of source facts that fired the deriving rule.
std::string ExplainFact(const chase::ChaseResult& result,
                        const chase::Fact& fact);

// All source facts contributing to any derivation of `fact` (flattened
// witness union) — the "source data that contributed to a particular
// target data item".
std::vector<chase::Fact> Lineage(const chase::ChaseResult& result,
                                 const chase::Fact& fact);

// ---------------------------------------------------------------------------
// Data exchange convenience (the runtime's executor face)
// ---------------------------------------------------------------------------

struct ExchangeOptions {
  bool compute_core = false;   // minimize the universal solution
  bool track_provenance = false;
  // Chase evaluation strategy, passed straight through to ChaseOptions:
  // `naive` restores the rescan-everything oracle, `semi_naive` (default)
  // keeps delta-restricted re-matching on top of the indexed executor.
  bool naive = false;
  bool semi_naive = true;
  // Analyze the mapping (analysis::AnalyzeMapping) before chasing and run
  // the stratified scheduler: rules grouped into dependency strata, late
  // strata not matched until their inputs are live, quiescent strata
  // retired. Also arms termination foresight (a conservative tuple budget
  // when the classifier says potentially non-terminating and no explicit
  // budget is set). Off by default: the flat semi-naive chase is the
  // baseline and the analysis pass is not free.
  bool stratified = false;
  // Worker threads for the parallel chase executor (and the core scan when
  // compute_core is set): 0 defers to MM2_THREADS, default 1 = serial.
  std::size_t threads = 0;
  // Storage representation for the chase hot path, forwarded to
  // ChaseOptions::storage. kDefault defers to MM2_STORAGE (default:
  // indexed); kSegmented backs probe/dedup work with sorted columnar
  // segments. The produced solution is bit-identical either way.
  instance::StorageMode storage = instance::StorageMode::kDefault;
  // Soft resource budgets, forwarded to ChaseOptions (0 = unlimited). On a
  // breach the chase stops gracefully and ExchangeResult::breach reports
  // why; core minimization is skipped for a partial solution.
  std::uint64_t wall_budget_us = 0;
  std::size_t tuple_budget = 0;
  std::size_t rss_budget_kb = 0;
  // External stop switch, forwarded to the chase and to ComputeCore.
  obs::CancelToken* cancel = nullptr;
  // Optional collector, threaded through to the chase (and core
  // minimization when enabled).
  obs::Context* obs = nullptr;
};

struct ExchangeResult {
  instance::Instance target;
  chase::ChaseStats stats;
  chase::Provenance provenance;
  std::size_t pre_core_tuples = 0;  // when compute_core
  // Set when a budget (or external cancel) stopped the chase early; target
  // and stats hold the partial state as of the last completed round.
  std::optional<chase::ChaseBreach> breach;
};

// Runs the mapping end to end: chase, optional core minimization,
// provenance. This is the "runtime that executes mappings" the revised
// vision adds as a first-class component.
Result<ExchangeResult> Exchange(const logic::Mapping& mapping,
                                const instance::Instance& source,
                                const ExchangeOptions& options = {});

// ---------------------------------------------------------------------------
// Incremental exchange (delta-driven target maintenance)
// ---------------------------------------------------------------------------

// A resumable exchange: the materialized target plus everything the chase
// needs to maintain it under source deltas without starting over — the
// semi-naive frontier (per-rule watermarks), the Skolem memo (so re-derived
// facts reuse the nulls they already invented), derivation witnesses (the
// DRed substrate for deletions), and the journal of facts that justified
// egd/SO-equality unifications (the cases incremental deletion cannot
// unwind in place).
struct ExchangeSession {
  logic::Mapping mapping;
  instance::Instance source;       // current source; deltas applied in place
  instance::Instance target;       // maintained canonical universal solution
  chase::Provenance provenance;    // fact -> derivation witnesses
  chase::ChaseSessionState state;  // watermarks, skolem memo, journal
  ExchangeOptions options;         // evaluation knobs reused per maintain
  chase::ChaseStats last_stats;    // stats of the most recent (re)chase
  // Set when the most recent run stopped on a budget breach or cancel; the
  // session then holds a partial solution and the next maintain falls back
  // to a from-scratch pass (the frontier was invalidated with it).
  std::optional<chase::ChaseBreach> breach;
  std::size_t maintains = 0;  // MaintainExchange calls served
  std::size_t fallbacks = 0;  // of which rebuilt via full re-chase
};

// Chases `source` from scratch and captures the resumable state. The
// session takes ownership of the source instance (deltas mutate it in
// place). Provenance tracking is always on — it is what makes deletions
// answerable — and compute_core is rejected: the core is not
// delta-maintainable, so incremental sessions maintain the canonical
// solution instead.
Result<ExchangeSession> BeginExchangeSession(const logic::Mapping& mapping,
                                             instance::Instance source,
                                             const ExchangeOptions& options = {});

// Applies a source delta to the session and maintains the target, returning
// the induced target delta (what changed in the materialized solution).
//
// Insertions ride the semi-naive frontier: new source tuples land above the
// per-rule watermarks, so the resumed chase re-matches only assignments
// that bind at least one new tuple. Deletions prune recorded witnesses via
// the session's source->target support index, visiting only facts the dead
// tuples actually support — O(|delta| * fanout), never O(|target|). Session
// provenance is complete (the chase books a witness for probe-satisfied
// triggers too, not just firings), so a fact whose witnesses all died is
// genuinely underivable and is erased outright — no re-derive chase pass
// exists; facts with a surviving witness are kept without any chase work
// (the counting shortcut — witnesses here are exactly the surviving
// derivations). When a deleted (or over-estimated) fact justified an egd or
// SO-equality unification, the null merge it licensed cannot be cheaply
// unwound, so the maintain falls back to a full re-chase (counted in
// `fallbacks`; the returned delta is then the wholesale instance diff).
//
// Budgets and the CancelToken in the session's options apply to the resumed
// chase exactly as they do to Exchange.
Result<Delta> MaintainExchange(ExchangeSession& session,
                               const Delta& source_delta);

}  // namespace mm2::runtime

#endif  // MM2_RUNTIME_RUNTIME_H_
