#include "transgen/transgen.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "instance/value.h"

namespace mm2::transgen {

using algebra::Col;
using algebra::Expr;
using algebra::ExprRef;
using algebra::Lit;
using algebra::NamedExpr;
using algebra::Scalar;
using algebra::ScalarRef;
using instance::Instance;
using instance::Value;
using modelgen::MappingFragment;

std::string CompiledViews::ToString() const {
  std::string out = "-- query view for " + entity_set + ":\n";
  out += query_view->ToSql() + "\n";
  for (const auto& [table, view] : update_views) {
    out += "-- update view for " + table + ":\n" + view->ToSql() + "\n";
  }
  return out;
}

namespace {

// Qualified output column for fragment index i and entity attribute a.
std::string FragCol(std::size_t i, const std::string& attr) {
  return "f" + std::to_string(i) + "_" + attr;
}
std::string FragFlag(std::size_t i) {
  return "f" + std::to_string(i) + "__present";
}

// Sub-expression reading fragment i's table: selects its discriminator
// rows (if any), renames mapped columns to fragment-qualified names, and
// adds a constant presence flag.
ExprRef FragmentExpr(std::size_t i, const MappingFragment& f) {
  ExprRef expr = Expr::Scan(f.table);
  if (!f.discriminator_column.empty()) {
    std::vector<Value> values;
    for (const std::string& t : f.types) values.push_back(Value::String(t));
    expr = Expr::Select(
        expr, Scalar::In(Col(f.discriminator_column), std::move(values)));
  }
  std::vector<NamedExpr> projections;
  for (const auto& [attr, col] : f.attribute_map) {
    projections.push_back({FragCol(i, attr), Col(col)});
  }
  projections.push_back({FragFlag(i), Lit(Value::Bool(true))});
  return Expr::Project(expr, std::move(projections));
}

// Union-find over fragment indices, merged when fragments share a type.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

Result<CompiledViews> CompileFragments(
    const model::Schema& er, const std::string& entity_set,
    const model::Schema& relational,
    const std::vector<MappingFragment>& fragments, TransGenStats* stats) {
  TransGenStats local;
  TransGenStats* s = stats != nullptr ? stats : &local;
  *s = TransGenStats();

  const model::EntitySet* set = er.FindEntitySet(entity_set);
  if (set == nullptr) {
    return Status::NotFound("entity set '" + entity_set + "' not in schema '" +
                            er.name() + "'");
  }
  MM2_ASSIGN_OR_RETURN(instance::EntitySetLayout layout,
                       instance::ComputeEntitySetLayout(er, *set));
  if (layout.columns.empty()) {
    return Status::InvalidArgument("entity set '" + entity_set +
                                   "' has no attributes");
  }
  const std::string key = layout.columns.front();

  std::vector<const MappingFragment*> frags;
  for (const MappingFragment& f : fragments) {
    if (f.entity_set == entity_set) frags.push_back(&f);
  }
  if (frags.empty()) {
    return Status::InvalidArgument("no fragments for entity set '" +
                                   entity_set + "'");
  }
  for (const MappingFragment* f : frags) {
    if (relational.FindRelation(f->table) == nullptr) {
      return Status::NotFound("fragment table '" + f->table +
                              "' not in relational schema");
    }
    bool maps_key = false;
    for (const auto& [attr, col] : f->attribute_map) {
      if (attr == key) maps_key = true;
    }
    if (!maps_key) {
      return Status::Unsupported("fragment over '" + f->table +
                                 "' does not map the entity key '" + key +
                                 "'");
    }
  }

  // Group fragments into components by shared types.
  UnionFind uf(frags.size());
  for (std::size_t i = 0; i < frags.size(); ++i) {
    for (std::size_t j = i + 1; j < frags.size(); ++j) {
      for (const std::string& t : frags[i]->types) {
        if (std::find(frags[j]->types.begin(), frags[j]->types.end(), t) !=
            frags[j]->types.end()) {
          uf.Union(i, j);
          break;
        }
      }
    }
  }
  std::map<std::size_t, std::vector<std::size_t>> components;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    components[uf.Find(i)].push_back(i);
  }

  std::vector<ExprRef> branches;
  for (auto& [root, member_ids] : components) {
    ++s->components;
    // Types covered by the component.
    std::set<std::string> types;
    for (std::size_t i : member_ids) {
      types.insert(frags[i]->types.begin(), frags[i]->types.end());
    }
    // Anchor: a fragment covering every type of the component.
    std::size_t anchor = static_cast<std::size_t>(-1);
    for (std::size_t i : member_ids) {
      if (frags[i]->types.size() == types.size()) anchor = i;
    }
    if (anchor == static_cast<std::size_t>(-1)) {
      return Status::Unsupported(
          "no anchor fragment covers all types {" +
          Join(std::vector<std::string>(types.begin(), types.end()), ", ") +
          "}; horizontal partitioning within a hierarchy branch is outside "
          "the supported fragment language");
    }

    // Anchor LEFT OUTER JOIN the other fragments on the entity key.
    ExprRef expr = FragmentExpr(anchor, *frags[anchor]);
    std::vector<std::size_t> others;
    for (std::size_t i : member_ids) {
      if (i != anchor) others.push_back(i);
    }
    for (std::size_t i : others) {
      expr = Expr::Join(expr, FragmentExpr(i, *frags[i]),
                        Expr::JoinKind::kLeftOuter,
                        {{FragCol(anchor, key), FragCol(i, key)}});
      ++s->outer_joins;
    }

    // Presence predicates (the _from flags of Fig. 3): the anchor is
    // always present; others are present when their flag survived the
    // outer join.
    auto present = [&](std::size_t i) -> ScalarRef {
      if (i == anchor) return Lit(Value::Bool(true));
      return Scalar::Not(Scalar::IsNull(Col(FragFlag(i))));
    };

    // Type dispatch: single-fragment single-type components short-circuit
    // to a constant; otherwise a CASE over the full flag pattern, most
    // informative (largest) patterns first.
    ScalarRef type_expr;
    if (member_ids.size() == 1 && frags[anchor]->types.size() == 1) {
      type_expr = Lit(Value::String(frags[anchor]->types.front()));
    } else if (member_ids.size() == 1 &&
               !frags[anchor]->discriminator_column.empty()) {
      return Status::Unsupported(
          "multi-type discriminated fragment needs the discriminator "
          "mapped as an attribute");
    } else {
      std::vector<std::pair<std::string, std::vector<std::size_t>>> patterns;
      for (const std::string& type : types) {
        std::vector<std::size_t> covering;
        for (std::size_t i : member_ids) {
          if (std::find(frags[i]->types.begin(), frags[i]->types.end(),
                        type) != frags[i]->types.end()) {
            covering.push_back(i);
          }
        }
        patterns.push_back({type, std::move(covering)});
      }
      // Distinct flag patterns are required for an unambiguous reading.
      std::set<std::vector<std::size_t>> seen;
      for (const auto& [type, covering] : patterns) {
        if (!seen.insert(covering).second) {
          return Status::Unsupported(
              "types share an identical fragment pattern; cannot "
              "distinguish them in the query view");
        }
      }
      std::vector<Scalar::CaseBranch> case_branches;
      for (const auto& [type, covering] : patterns) {
        std::vector<ScalarRef> conjuncts;
        for (std::size_t i : member_ids) {
          bool in_pattern = std::find(covering.begin(), covering.end(), i) !=
                            covering.end();
          conjuncts.push_back(in_pattern ? present(i)
                                         : Scalar::Not(present(i)));
        }
        case_branches.push_back(
            {Scalar::And(std::move(conjuncts)), Lit(Value::String(type))});
        ++s->case_branches;
      }
      type_expr = Scalar::Case(std::move(case_branches), Lit(Value::Null()));
    }

    // Output projection: $type + every layout column. A column mapped by
    // the anchor is read from it (the anchor row always exists — Fig. 3
    // takes Id and Name from T1/HR); otherwise it comes from the most
    // specific fragment mapping it, where outer-join NULL padding is
    // exactly the desired value for uncovered types.
    std::vector<NamedExpr> out;
    out.push_back({algebra::kTypeColumn, type_expr});
    for (const std::string& col : layout.columns) {
      std::size_t best = static_cast<std::size_t>(-1);
      for (std::size_t i : member_ids) {
        bool maps = false;
        for (const auto& [attr, c] : frags[i]->attribute_map) {
          if (attr == col) maps = true;
        }
        if (!maps) continue;
        if (i == anchor) {
          best = i;
          break;
        }
        if (best == static_cast<std::size_t>(-1) ||
            frags[i]->types.size() < frags[best]->types.size()) {
          best = i;
        }
      }
      if (best == static_cast<std::size_t>(-1)) {
        out.push_back({col, Lit(Value::Null())});
      } else {
        out.push_back({col, Col(FragCol(best, col))});
      }
    }
    branches.push_back(Expr::Project(std::move(expr), std::move(out)));
  }

  CompiledViews views;
  views.entity_set = entity_set;
  views.query_view = branches.size() == 1
                         ? branches.front()
                         : Expr::Union(std::move(branches));
  s->query_view_nodes = views.query_view->NodeCount();

  // Update views: per table, UNION ALL over the fragments stored in it.
  std::map<std::string, std::vector<const MappingFragment*>> frags_of_table;
  for (const MappingFragment* f : frags) {
    frags_of_table[f->table].push_back(f);
  }
  for (const auto& [table, table_frags] : frags_of_table) {
    const model::Relation* rel = relational.FindRelation(table);
    std::vector<ExprRef> parts;
    for (const MappingFragment* f : table_frags) {
      std::vector<Value> type_values;
      for (const std::string& t : f->types) {
        type_values.push_back(Value::String(t));
      }
      ExprRef part = Expr::Select(
          Expr::Scan(entity_set),
          Scalar::In(Col(algebra::kTypeColumn), std::move(type_values)));
      std::vector<NamedExpr> cols;
      for (const model::Attribute& a : rel->attributes()) {
        if (a.name == f->discriminator_column) {
          cols.push_back({a.name, Col(algebra::kTypeColumn)});
          continue;
        }
        const std::string* entity_attr = nullptr;
        for (const auto& [attr, c] : f->attribute_map) {
          if (c == a.name) entity_attr = &attr;
        }
        if (entity_attr != nullptr) {
          cols.push_back({a.name, Col(*entity_attr)});
        } else {
          cols.push_back({a.name, Lit(Value::Null())});
        }
      }
      parts.push_back(Expr::Project(std::move(part), std::move(cols)));
    }
    ExprRef view =
        parts.size() == 1 ? parts.front() : Expr::Union(std::move(parts));
    views.update_views[table] = Expr::Distinct(std::move(view));
  }
  return views;
}

namespace {

Result<algebra::Catalog> CombinedCatalog(const model::Schema& er,
                                         const model::Schema& relational) {
  MM2_ASSIGN_OR_RETURN(algebra::Catalog cat, algebra::Catalog::FromSchema(er));
  MM2_ASSIGN_OR_RETURN(algebra::Catalog rel_cat,
                       algebra::Catalog::FromSchema(relational));
  cat.Merge(rel_cat);
  return cat;
}

}  // namespace

Status ApplyUpdateViews(const CompiledViews& views, const model::Schema& er,
                        const model::Schema& relational,
                        const Instance& entities, Instance* tables_out) {
  MM2_ASSIGN_OR_RETURN(algebra::Catalog cat, CombinedCatalog(er, relational));
  for (const auto& [table, view] : views.update_views) {
    MM2_ASSIGN_OR_RETURN(algebra::Table result,
                         algebra::Evaluate(*view, cat, entities));
    algebra::Materialize(result, table, tables_out);
  }
  return Status::OK();
}

Status ApplyQueryView(const CompiledViews& views, const model::Schema& er,
                      const model::Schema& relational, const Instance& tables,
                      Instance* entities_out) {
  MM2_ASSIGN_OR_RETURN(algebra::Catalog cat, CombinedCatalog(er, relational));
  MM2_ASSIGN_OR_RETURN(algebra::Table result,
                       algebra::Evaluate(*views.query_view, cat, tables));
  algebra::Materialize(result, views.entity_set, entities_out);
  return Status::OK();
}

Result<bool> VerifyRoundtrip(const CompiledViews& views,
                             const model::Schema& er,
                             const model::Schema& relational,
                             const Instance& entities) {
  Instance tables;
  MM2_RETURN_IF_ERROR(
      ApplyUpdateViews(views, er, relational, entities, &tables));
  Instance back;
  MM2_RETURN_IF_ERROR(ApplyQueryView(views, er, relational, tables, &back));
  const instance::RelationInstance* original =
      entities.Find(views.entity_set);
  const instance::RelationInstance* recovered = back.Find(views.entity_set);
  if (original == nullptr || recovered == nullptr) {
    return original == recovered;
  }
  return original->tuples() == recovered->tuples();
}

}  // namespace mm2::transgen
