#include "transgen/relational.h"

#include <set>
#include <utility>
#include <vector>

#include "instance/value.h"

namespace mm2::transgen {

using algebra::Col;
using algebra::Expr;
using algebra::ExprRef;
using algebra::Lit;
using algebra::NamedExpr;
using algebra::Scalar;
using algebra::ScalarRef;
using instance::Value;
using logic::Atom;
using logic::Term;
using logic::Tgd;

std::string CompiledRelationalMapping::ToString() const {
  std::string out;
  for (const auto& [relation, plan] : loaders) {
    out += "-- loader for " + relation + ":\n" + plan->ToSql() + "\n";
  }
  return out;
}

namespace {

// Compiles a conjunctive body into a join tree. Returns the expression and
// fills `column_of_var` with the (first) output column holding each body
// variable's value.
Result<ExprRef> CompileBody(const model::Schema& source,
                            const std::vector<Atom>& body,
                            std::map<std::string, std::string>* column_of_var) {
  ExprRef plan;
  std::vector<ScalarRef> residual;  // constant / repeated-var selections

  for (std::size_t ai = 0; ai < body.size(); ++ai) {
    const Atom& atom = body[ai];
    const model::Relation* rel = source.FindRelation(atom.relation);
    if (rel == nullptr) {
      return Status::NotFound("body atom over unknown relation '" +
                              atom.relation + "'");
    }
    if (rel->arity() != atom.terms.size()) {
      return Status::InvalidArgument("arity mismatch in atom " +
                                     atom.ToString());
    }
    // Scan with columns renamed to a unique per-atom prefix.
    std::string prefix = "a" + std::to_string(ai) + "_";
    std::vector<NamedExpr> projections;
    for (const model::Attribute& a : rel->attributes()) {
      projections.push_back({prefix + a.name, Col(a.name)});
    }
    ExprRef scan = Expr::Project(Expr::Scan(atom.relation),
                                 std::move(projections));

    std::vector<std::pair<std::string, std::string>> join_keys;
    std::vector<ScalarRef> local;
    for (std::size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      std::string column = prefix + rel->attribute(i).name;
      if (t.is_constant()) {
        local.push_back(Scalar::Eq(Col(column), Lit(t.value())));
        continue;
      }
      if (t.is_function()) {
        return Status::Unsupported(
            "function terms cannot be compiled; use the chase");
      }
      auto it = column_of_var->find(t.name());
      if (it == column_of_var->end()) {
        (*column_of_var)[t.name()] = column;
      } else if (it->second.rfind(prefix, 0) == 0) {
        // Repeated variable within this atom: local selection.
        local.push_back(algebra::ColEqCol(it->second, column));
      } else {
        // Shared with an earlier atom: equijoin key.
        join_keys.push_back({it->second, column});
      }
    }

    if (plan == nullptr) {
      plan = std::move(scan);
    } else if (join_keys.empty()) {
      plan = Expr::Join(std::move(plan), std::move(scan),
                        Expr::JoinKind::kCross, {});
    } else {
      plan = Expr::Join(std::move(plan), std::move(scan),
                        Expr::JoinKind::kInner, std::move(join_keys));
    }
    for (ScalarRef& s : local) residual.push_back(std::move(s));
  }
  if (!residual.empty()) {
    plan = Expr::Select(std::move(plan), Scalar::And(std::move(residual)));
  }
  return plan;
}

}  // namespace

Result<CompiledRelationalMapping> CompileRelationalMapping(
    const logic::Mapping& mapping) {
  if (mapping.is_second_order()) {
    return Status::Unsupported(
        "second-order mappings need the chase (Skolem value invention)");
  }
  if (!mapping.target_egds().empty()) {
    return Status::Unsupported(
        "mappings with target egds need the chase (null unification)");
  }
  MM2_RETURN_IF_ERROR(mapping.Validate());

  CompiledRelationalMapping compiled;
  // Per target relation, collect one branch per (tgd, head atom).
  std::map<std::string, std::vector<ExprRef>> branches;
  for (const Tgd& tgd : mapping.tgds()) {
    std::map<std::string, std::string> column_of_var;
    MM2_ASSIGN_OR_RETURN(ExprRef body_plan,
                         CompileBody(mapping.source(), tgd.body,
                                     &column_of_var));
    for (const Atom& head : tgd.head) {
      const model::Relation* rel =
          mapping.target().FindRelation(head.relation);
      if (rel == nullptr) {
        return Status::NotFound("head atom over unknown relation '" +
                                head.relation + "'");
      }
      std::vector<NamedExpr> out;
      for (std::size_t i = 0; i < head.terms.size(); ++i) {
        const Term& t = head.terms[i];
        const std::string& name = rel->attribute(i).name;
        if (t.is_constant()) {
          out.push_back({name, Lit(t.value())});
        } else if (t.is_variable()) {
          auto it = column_of_var.find(t.name());
          if (it == column_of_var.end()) {
            // Existential: flat NULL approximation.
            ++compiled.null_approximations;
            out.push_back({name, Lit(Value::Null())});
          } else {
            out.push_back({name, Col(it->second)});
          }
        } else {
          return Status::Unsupported("function term in head");
        }
      }
      branches[head.relation].push_back(
          Expr::Project(body_plan, std::move(out)));
    }
  }
  for (auto& [relation, parts] : branches) {
    ExprRef plan =
        parts.size() == 1 ? parts.front() : Expr::Union(std::move(parts));
    compiled.loaders[relation] = Expr::Distinct(std::move(plan));
  }
  return compiled;
}

Result<instance::Instance> ExecuteCompiledMapping(
    const CompiledRelationalMapping& compiled, const logic::Mapping& mapping,
    const instance::Instance& source) {
  MM2_ASSIGN_OR_RETURN(algebra::Catalog catalog,
                       algebra::Catalog::FromSchema(mapping.source()));
  instance::Instance target = instance::Instance::EmptyFor(mapping.target());
  for (const auto& [relation, plan] : compiled.loaders) {
    MM2_ASSIGN_OR_RETURN(algebra::Table table,
                         algebra::Evaluate(*plan, catalog, source));
    algebra::Materialize(table, relation, &target);
  }
  return target;
}

}  // namespace mm2::transgen
