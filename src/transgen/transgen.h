#ifndef MM2_TRANSGEN_TRANSGEN_H_
#define MM2_TRANSGEN_TRANSGEN_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/eval.h"
#include "algebra/expr.h"
#include "common/result.h"
#include "instance/instance.h"
#include "model/schema.h"
#include "modelgen/modelgen.h"

namespace mm2::transgen {

// The executable transformations TransGen produces from declarative
// mapping fragments (paper Section 4, after ADO.NET):
//  - the *query view* expresses the entity set as a function of the tables
//    (Fig. 3's CASE/UNION query: left-outer-join the fragment tables on
//    the entity key, compute _from flags, pick the concrete type by flag
//    pattern);
//  - one *update view* per table expresses that table as a function of the
//    entity set, used to translate entity updates into table updates.
// Roundtripping (update views then query view == identity on entities) is
// the losslessness criterion; VerifyRoundtrip checks it on data.
struct CompiledViews {
  std::string entity_set;
  // Output columns: $type followed by the entity-set layout columns.
  algebra::ExprRef query_view;
  // table name -> expression over the entity-set relation producing it.
  std::map<std::string, algebra::ExprRef> update_views;

  // Human-readable dump (algebra + SQL), reproducing Fig. 3's listing.
  std::string ToString() const;
};

struct TransGenStats {
  std::size_t components = 0;       // union branches in the query view
  std::size_t outer_joins = 0;      // LOJ count (Fig. 3 has 1)
  std::size_t case_branches = 0;    // type-dispatch branches
  std::size_t query_view_nodes = 0; // operator count of the query view
};

// Compiles the fragments describing `entity_set` into executable views.
// Unsupported fragment shapes (a component with no covering anchor
// fragment, or a fragment that does not map the entity key) are reported
// as Status::Unsupported — the tractability compromise Section 2 warns
// about, surfaced honestly.
Result<CompiledViews> CompileFragments(
    const model::Schema& er, const std::string& entity_set,
    const model::Schema& relational,
    const std::vector<modelgen::MappingFragment>& fragments,
    TransGenStats* stats = nullptr);

// Applies the update views to an entity instance, materializing the
// relational tables into `tables_out` (declared/overwritten).
Status ApplyUpdateViews(const CompiledViews& views, const model::Schema& er,
                        const model::Schema& relational,
                        const instance::Instance& entities,
                        instance::Instance* tables_out);

// Evaluates the query view over a relational instance, materializing the
// entity-set relation into `entities_out`.
Status ApplyQueryView(const CompiledViews& views, const model::Schema& er,
                      const model::Schema& relational,
                      const instance::Instance& tables,
                      instance::Instance* entities_out);

// Checks roundtripping: entities --update views--> tables --query view-->
// entities' and verifies entities' == entities (set semantics).
Result<bool> VerifyRoundtrip(const CompiledViews& views,
                             const model::Schema& er,
                             const model::Schema& relational,
                             const instance::Instance& entities);

}  // namespace mm2::transgen

#endif  // MM2_TRANSGEN_TRANSGEN_H_
