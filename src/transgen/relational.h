#ifndef MM2_TRANSGEN_RELATIONAL_H_
#define MM2_TRANSGEN_RELATIONAL_H_

#include <map>
#include <string>

#include "algebra/eval.h"
#include "algebra/expr.h"
#include "common/result.h"
#include "instance/instance.h"
#include "logic/mapping.h"

namespace mm2::transgen {

// TransGen for flat relational mappings: compiles a first-order (s-t tgd)
// mapping into one algebra expression per target relation. This is the
// "batch loading" fast path of Section 5 — instead of chasing tuple by
// tuple, the whole load becomes a set-oriented query plan:
//
//   - a conjunctive body compiles to a join tree (shared variables become
//     equijoin keys, repeated variables within an atom and constants
//     become selections, disconnected atoms become cross products);
//   - each head atom becomes a projection of that tree;
//   - multiple tgds deriving the same relation union together (dedup'd).
//
// Existential head variables compile to SQL NULL columns — the flat
// approximation of labeled nulls. It is exact for queries that never
// inspect those columns; callers needing genuine labeled-null semantics
// (certain answers over invented values, egd unification) use the chase.
// Mappings with target egds are rejected: keys require the chase.
struct CompiledRelationalMapping {
  // target relation -> plan producing its extension.
  std::map<std::string, algebra::ExprRef> loaders;
  // How many existential columns were approximated by NULL.
  std::size_t null_approximations = 0;

  std::string ToString() const;
};

Result<CompiledRelationalMapping> CompileRelationalMapping(
    const logic::Mapping& mapping);

// Evaluates every loader over `source`, materializing the target instance.
Result<instance::Instance> ExecuteCompiledMapping(
    const CompiledRelationalMapping& compiled, const logic::Mapping& mapping,
    const instance::Instance& source);

}  // namespace mm2::transgen

#endif  // MM2_TRANSGEN_RELATIONAL_H_
