#ifndef MM2_INVERSE_INVERSE_H_
#define MM2_INVERSE_INVERSE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "instance/instance.h"
#include "logic/mapping.h"

namespace mm2::inverse {

// The syntactic Invert operator of Section 6.2: swaps the roles of source
// and target. A mapping denotes a set of instance pairs; Invert flips each
// pair. For constraint sets given as *equalities* of queries (both
// inclusion directions present, as the snowflake interpretation produces)
// the swap is exact; for a bare inclusion tgd the swapped tgd expresses the
// reversed containment, which is the conventional reading ("just a minor
// syntactic issue" in the paper's words).
Result<logic::Mapping> Invert(const logic::Mapping& mapping);

// Result of attempting a Fagin-style inverse (Section 6.4): a mapping from
// target back to source that roundtrips data. `exact` says whether the
// recovered mapping reproduces every source relation; otherwise it is a
// quasi-inverse for the recoverable part and `lost` lists what cannot be
// recovered (information-capacity loss, Section 6.2's Diff motivation).
struct InverseResult {
  logic::Mapping inverse;
  bool exact = false;
  // "R" (whole relation unrecoverable) or "R.attr" (attribute lost).
  std::vector<std::string> lost;
};

// Computes an inverse of a first-order (s-t tgd) mapping by the canonical
// instance method: for each source relation R, chase a frozen one-tuple
// R-instance through the mapping and read the resulting target facts back
// as the body of a reconstruction query for R. A source attribute whose
// frozen marker does not survive into the target is lost; a relation with
// no surviving facts is entirely lost.
//
// The returned tgds form a quasi-inverse in general; when `exact` is true,
// RunChase(mapping) followed by RunChase(inverse) reproduces the source
// exactly on null-free instances (the roundtripping condition of Section
// 4), which VerifyRoundtrip checks empirically.
Result<InverseResult> ComputeInverse(const logic::Mapping& mapping);

// Chases `source` forward through `mapping` and back through `candidate`;
// returns true when the roundtrip reproduces exactly the source relations
// (ignoring relations absent from the source schema).
Result<bool> VerifyRoundtrip(const logic::Mapping& mapping,
                             const logic::Mapping& candidate,
                             const instance::Instance& source);

}  // namespace mm2::inverse

#endif  // MM2_INVERSE_INVERSE_H_
