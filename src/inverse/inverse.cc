#include "inverse/inverse.h"

#include <map>
#include <set>
#include <utility>

#include "chase/chase.h"
#include "logic/formula.h"

namespace mm2::inverse {

using instance::Instance;
using instance::Tuple;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;

Result<Mapping> Invert(const Mapping& mapping) {
  if (mapping.is_second_order()) {
    return Status::Unsupported(
        "Invert of a second-order mapping is not supported; deskolemize or "
        "compose further first");
  }
  std::vector<Tgd> swapped;
  swapped.reserve(mapping.tgds().size());
  for (const Tgd& tgd : mapping.tgds()) {
    Tgd inv;
    inv.body = tgd.head;
    inv.head = tgd.body;
    swapped.push_back(std::move(inv));
  }
  return Mapping::FromTgds(mapping.name() + "^", mapping.target(),
                           mapping.source(), std::move(swapped));
}

namespace {

// Marker constant for position `index` of relation `relation` in the
// frozen canonical instance.
Value Marker(const std::string& relation, std::size_t index) {
  return Value::String("$" + relation + "#" + std::to_string(index) + "$");
}

// Builds the canonical one-tuple instance for a single relation.
Instance CanonicalInstanceFor(const model::Relation& relation) {
  Instance db;
  db.DeclareRelation(relation.name(), relation.arity());
  Tuple tuple;
  for (std::size_t i = 0; i < relation.arity(); ++i) {
    tuple.push_back(Marker(relation.name(), i));
  }
  db.InsertUnchecked(relation.name(), std::move(tuple));
  return db;
}

// Builds the joint canonical instance: one marked tuple per relation.
Instance JointCanonicalInstance(const model::Schema& schema) {
  Instance db;
  for (const model::Relation& r : schema.relations()) {
    db.DeclareRelation(r.name(), r.arity());
    Tuple tuple;
    for (std::size_t i = 0; i < r.arity(); ++i) {
      tuple.push_back(Marker(r.name(), i));
    }
    db.InsertUnchecked(r.name(), std::move(tuple));
  }
  return db;
}

}  // namespace

Result<InverseResult> ComputeInverse(const Mapping& mapping) {
  if (mapping.is_second_order()) {
    return Status::Unsupported(
        "ComputeInverse handles first-order (s-t tgd) mappings only");
  }
  InverseResult result;
  std::vector<Tgd> inverse_tgds;
  logic::NameGenerator existential_gen("_inv_e");

  for (const model::Relation& relation : mapping.source().relations()) {
    Instance canonical = CanonicalInstanceFor(relation);
    MM2_ASSIGN_OR_RETURN(chase::ChaseResult chased,
                         chase::RunChase(mapping, canonical));

    // Read the derived target facts back as a reconstruction query.
    std::map<Value, std::string> var_of_value;
    for (std::size_t i = 0; i < relation.arity(); ++i) {
      var_of_value[Marker(relation.name(), i)] =
          "x" + std::to_string(i);
    }
    std::vector<Atom> body;
    std::set<std::string> seen_markers;
    for (const auto& [name, rel] : chased.target.relations()) {
      for (const Tuple& t : rel.tuples()) {
        bool has_marker = false;
        Atom atom;
        atom.relation = name;
        for (const Value& v : t) {
          auto it = var_of_value.find(v);
          if (it != var_of_value.end()) {
            atom.terms.push_back(Term::Var(it->second));
            has_marker = true;
            seen_markers.insert(it->second);
          } else if (v.is_labeled_null()) {
            atom.terms.push_back(
                Term::Var("_n" + std::to_string(v.label())));
          } else {
            atom.terms.push_back(Term::Const(v));
          }
        }
        if (has_marker) body.push_back(std::move(atom));
      }
    }

    if (body.empty()) {
      result.lost.push_back(relation.name());
      continue;
    }
    Tgd inv;
    inv.body = std::move(body);
    Atom head;
    head.relation = relation.name();
    for (std::size_t i = 0; i < relation.arity(); ++i) {
      std::string var = "x" + std::to_string(i);
      if (seen_markers.count(var) > 0) {
        head.terms.push_back(Term::Var(var));
      } else {
        // Attribute not recoverable: existential placeholder
        // (quasi-inverse behavior).
        head.terms.push_back(existential_gen.NextVar());
        result.lost.push_back(relation.name() + "." +
                              relation.attribute(i).name);
      }
    }
    inv.head = {std::move(head)};
    inverse_tgds.push_back(std::move(inv));
  }

  if (inverse_tgds.empty()) {
    return Status::NotExpressible("mapping '" + mapping.name() +
                                  "' loses every source relation; no "
                                  "(quasi-)inverse exists");
  }
  result.inverse = Mapping::FromTgds(mapping.name() + "^-1", mapping.target(),
                                     mapping.source(),
                                     std::move(inverse_tgds));
  if (result.lost.empty()) {
    // Necessary condition met; confirm on the joint canonical instance
    // that reconstruction does not overproduce (e.g. two source relations
    // funneled into one target relation would bleed into each other).
    MM2_ASSIGN_OR_RETURN(
        bool roundtrips,
        VerifyRoundtrip(mapping, result.inverse,
                        JointCanonicalInstance(mapping.source())));
    result.exact = roundtrips;
  }
  return result;
}

Result<bool> VerifyRoundtrip(const Mapping& mapping, const Mapping& candidate,
                             const Instance& source) {
  MM2_ASSIGN_OR_RETURN(chase::ChaseResult forward,
                       chase::RunChase(mapping, source));
  MM2_ASSIGN_OR_RETURN(chase::ChaseResult back,
                       chase::RunChase(candidate, forward.target));
  // Compare only the relations of the source schema.
  for (const model::Relation& r : mapping.source().relations()) {
    const instance::RelationInstance* original = source.Find(r.name());
    const instance::RelationInstance* recovered = back.target.Find(r.name());
    std::size_t original_size = original == nullptr ? 0 : original->size();
    std::size_t recovered_size = recovered == nullptr ? 0 : recovered->size();
    if (original_size != recovered_size) return false;
    if (original == nullptr || recovered == nullptr) continue;
    if (original->tuples() != recovered->tuples()) return false;
  }
  return true;
}

}  // namespace mm2::inverse
