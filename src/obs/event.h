#ifndef MM2_OBS_EVENT_H_
#define MM2_OBS_EVENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mm2::obs {

// ---------------------------------------------------------------------------
// Structured event log + flight recorder.
//
// An Event is a timestamped, leveled, key-value record ("chase.heartbeat",
// round=3, delta=120, ...). The EventLog renders accepted events to an
// optional sink (JSON-lines or text, selected via MM2_LOG=json|text|off or
// the engine's `log` command) and always retains the last N of them in a
// fixed-size ring buffer — the flight recorder. When a chase or engine
// command fails, DumpRecent() reconstructs the run-up to the failure and is
// appended to the diagnostic, so a crashed evolution script leaves evidence
// even when nobody was tailing the sink.
//
// The disabled path (the default) is one relaxed atomic load; call sites
// guard field construction behind enabled() so an idle log costs nothing on
// the chase hot path.
// ---------------------------------------------------------------------------

enum class EventLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

const char* EventLevelName(EventLevel level);
// Inverse of EventLevelName: "debug"|"info"|"warn"|"error" -> level.
// Returns false (leaving `out` untouched) on anything else.
bool ParseEventLevel(std::string_view name, EventLevel* out);

// One key-value pair of an event. `number` marks values that render
// unquoted in JSON (counts, durations); everything else is escaped text.
struct EventField {
  std::string key;
  std::string value;
  bool number = false;
};

// Field constructors; the numeric overloads format eagerly, so only call
// them behind an enabled() check.
inline EventField F(std::string key, std::string value) {
  return {std::move(key), std::move(value), false};
}
inline EventField F(std::string key, const char* value) {
  return {std::move(key), value, false};
}
inline EventField F(std::string key, std::uint64_t value) {
  return {std::move(key), std::to_string(value), true};
}
inline EventField F(std::string key, std::int64_t value) {
  return {std::move(key), std::to_string(value), true};
}
inline EventField F(std::string key, int value) {
  return F(std::move(key), static_cast<std::int64_t>(value));
}
EventField F(std::string key, double value);  // %.6g, like the bench lines

struct Event {
  EventLevel level = EventLevel::kInfo;
  std::uint64_t seq = 0;  // monotonically increasing per log
  double t_us = 0;        // microseconds since the log was constructed
  std::string name;       // dotted event key, e.g. "chase.heartbeat"
  std::vector<EventField> fields;

  // {"seq":3,"t_us":42.1,"level":"info","event":"chase.heartbeat","round":2}
  std::string ToJson() const;
  // [   42.1us] info  chase.heartbeat round=2 delta=120
  std::string ToText() const;
};

enum class EventFormat : std::uint8_t { kOff = 0, kText, kJson };

class EventLog {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 128;

  explicit EventLog(std::size_t ring_capacity = kDefaultRingCapacity);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Selects the output format and sink. A null sink with a non-off format
  // runs the log in flight-recorder-only mode: events land in the ring but
  // nothing is written anywhere. kOff disables recording entirely.
  void Configure(EventFormat format, std::ostream* sink = nullptr);
  // Like Configure, but writes to `path` (owned stream, flushed per event).
  Status ConfigureFile(EventFormat format, const std::string& path);
  // Applies MM2_LOG=json|text|off (unset or empty keeps the log off) and
  // MM2_LOG_LEVEL=debug|info|warn|error (unset or unparsable keeps kDebug);
  // the sink is stderr so event lines never interleave with command output.
  void ConfigureFromEnv();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  EventFormat format() const;
  // Events below `level` are dropped at the door (default: keep all).
  void SetMinLevel(EventLevel level);
  EventLevel min_level() const;

  void Emit(EventLevel level, std::string name, std::vector<EventField> fields);

  // Ring snapshot, oldest first. Empty when disabled or nothing emitted.
  std::vector<Event> Recent() const;
  std::size_t ring_capacity() const { return ring_capacity_; }
  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  void Clear();

  // The flight-recorder dump: a header plus one text line per retained
  // event, oldest first — the block that error diagnostics embed. Empty
  // string when the ring is empty.
  std::string DumpRecent() const;

 private:
  const std::size_t ring_capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> emitted_{0};
  mutable std::mutex mu_;
  EventFormat format_ = EventFormat::kOff;
  EventLevel min_level_ = EventLevel::kDebug;
  std::ostream* sink_ = nullptr;
  std::unique_ptr<std::ostream> owned_sink_;
  std::vector<Event> ring_;  // circular once full; next_ is the write slot
  std::size_t next_ = 0;
  std::uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------------------
// Cooperative cancellation. A watchdog (the chase's own budget checks, or
// an external controller like the server-to-be) calls RequestStop; the
// chase round loop, the partitioned match path, and ComputeCore poll
// stop_requested() and unwind gracefully — partial results and telemetry
// intact — instead of burning a core until max_rounds hard-errors.
// ---------------------------------------------------------------------------

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // First caller wins: the recorded reason names the original stop cause.
  void RequestStop(std::string reason);
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }
  std::string reason() const;
  void Reset();

 private:
  std::atomic<bool> stop_{false};
  mutable std::mutex mu_;
  std::string reason_;
};

// ---------------------------------------------------------------------------
// Process memory probes (/proc/self/status; 0 where unavailable). Peak is
// VmHWM — the same read bench/bench_report.h publishes as mem.peak_rss_kb —
// current is VmRSS, the live resident set the chase heartbeat reports and
// the rss budget watches.
// ---------------------------------------------------------------------------

double PeakRssKb();
double CurrentRssKb();

}  // namespace mm2::obs

#endif  // MM2_OBS_EVENT_H_
