#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>

#include "obs/json.h"
#include "obs/obs.h"

namespace mm2::obs {

namespace {

constexpr char kRulePrefix[] = "chase.rule.";
constexpr char kStratumPrefix[] = "chase.stratum.";

using json::FormatDouble;

std::string JsonEscape(const std::string& s) { return json::Escape(s); }

// Splits "op.<name>.<field>" / "chase.rule.<label>.<field>" style names at
// the *last* dot, so labels containing dots survive.
bool SplitLastDot(const std::string& name, std::string* head,
                  std::string* tail) {
  std::size_t dot = name.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == name.size()) {
    return false;
  }
  *head = name.substr(0, dot);
  *tail = name.substr(dot + 1);
  return true;
}

std::string RuleKind(const std::string& label) {
  if (label.rfind("tgd", 0) == 0) return "tgd";
  if (label.rfind("egd", 0) == 0) return "egd";
  if (label.rfind("so", 0) == 0) return "so_tgd";
  return "rule";
}

void BuildOperators(const MetricsSnapshot& metrics, ProfileReport* report) {
  std::map<std::string, OperatorCost> ops;
  for (const CounterSnapshot& c : metrics.counters) {
    if (c.name.rfind("op.", 0) != 0) continue;
    std::string head;
    std::string field;
    if (!SplitLastDot(c.name, &head, &field)) continue;
    std::string name = head.substr(3);  // strip "op."
    if (field == "calls") {
      ops[name].calls = c.value;
    } else if (field == "errors") {
      ops[name].errors = c.value;
    }
  }
  for (const HistogramSnapshot& h : metrics.histograms) {
    if (h.name.rfind("op.", 0) != 0) continue;
    std::string head;
    std::string field;
    if (!SplitLastDot(h.name, &head, &field)) continue;
    if (field != "latency_us") continue;
    OperatorCost& op = ops[head.substr(3)];
    op.total_us = h.sum;
    op.mean_us = h.mean();
    op.p50_us = h.p50();
    op.p95_us = h.p95();
    op.p99_us = h.p99();
    op.max_us = h.max;
  }
  for (auto& [name, op] : ops) {
    op.name = name;
    report->operator_total_us += op.total_us;
    report->operators.push_back(std::move(op));
  }
  for (OperatorCost& op : report->operators) {
    op.share = report->operator_total_us == 0
                   ? 0
                   : op.total_us / report->operator_total_us;
  }
  std::sort(report->operators.begin(), report->operators.end(),
            [](const OperatorCost& a, const OperatorCost& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
}

void BuildRules(const MetricsSnapshot& metrics, ProfileReport* report) {
  std::map<std::string, RuleCost> rules;
  for (const CounterSnapshot& c : metrics.counters) {
    if (c.name.rfind(kRulePrefix, 0) != 0) continue;
    std::string head;
    std::string field;
    if (!SplitLastDot(c.name, &head, &field)) continue;
    std::string label = head.substr(sizeof(kRulePrefix) - 1);
    RuleCost& rule = rules[label];
    if (field == "wall_us") {
      rule.wall_us = static_cast<double>(c.value);
    } else if (field == "triggers") {
      rule.triggers_tested = c.value;
    } else if (field == "firings") {
      rule.firings = c.value;
    } else if (field == "nulls") {
      rule.nulls_created = c.value;
    } else if (field == "rounds_active") {
      rule.rounds_active = c.value;
    }
  }
  for (const GaugeSnapshot& g : metrics.gauges) {
    if (g.name.rfind(kRulePrefix, 0) != 0) continue;
    std::string head;
    std::string field;
    if (!SplitLastDot(g.name, &head, &field)) continue;
    if (field != "stratum") continue;
    rules[head.substr(sizeof(kRulePrefix) - 1)].stratum = g.value;
  }
  for (const HistogramSnapshot& h : metrics.histograms) {
    if (h.name.rfind(kRulePrefix, 0) != 0) continue;
    std::string head;
    std::string field;
    if (!SplitLastDot(h.name, &head, &field)) continue;
    if (field != "round_us") continue;
    RuleCost& rule = rules[head.substr(sizeof(kRulePrefix) - 1)];
    rule.rounds = h.count;
    rule.round_p50_us = h.p50();
    rule.round_p95_us = h.p95();
    rule.round_max_us = h.max;
  }
  for (auto& [label, rule] : rules) {
    rule.label = label;
    rule.kind = RuleKind(label);
    report->rule_total_us += rule.wall_us;
    report->rules.push_back(std::move(rule));
  }
  for (RuleCost& rule : report->rules) {
    rule.share =
        report->rule_total_us == 0 ? 0 : rule.wall_us / report->rule_total_us;
  }
  std::sort(report->rules.begin(), report->rules.end(),
            [](const RuleCost& a, const RuleCost& b) {
              if (a.wall_us != b.wall_us) return a.wall_us > b.wall_us;
              return a.label < b.label;
            });
}

void BuildStrata(const MetricsSnapshot& metrics, ProfileReport* report) {
  std::map<std::size_t, StratumCost> strata;
  auto parse_index = [](const std::string& head, std::size_t* index) {
    std::string tail = head.substr(sizeof(kStratumPrefix) - 1);
    if (tail.empty()) return false;
    std::size_t value = 0;
    for (char c : tail) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    *index = value;
    return true;
  };
  for (const CounterSnapshot& c : metrics.counters) {
    if (c.name.rfind(kStratumPrefix, 0) != 0) continue;
    std::string head;
    std::string field;
    if (!SplitLastDot(c.name, &head, &field)) continue;
    std::size_t index = 0;
    if (!parse_index(head, &index)) continue;
    StratumCost& s = strata[index];
    if (field == "wall_us") {
      s.wall_us = static_cast<double>(c.value);
    } else if (field == "firings") {
      s.firings = c.value;
    }
  }
  for (const GaugeSnapshot& g : metrics.gauges) {
    if (g.name.rfind(kStratumPrefix, 0) != 0) continue;
    std::string head;
    std::string field;
    if (!SplitLastDot(g.name, &head, &field)) continue;
    std::size_t index = 0;
    if (!parse_index(head, &index)) continue;
    if (field == "rules") {
      strata[index].rules = g.value < 0 ? 0 : static_cast<std::uint64_t>(g.value);
    }
  }
  double total_us = 0;
  for (auto& [index, s] : strata) {
    s.index = index;
    total_us += s.wall_us;
    report->strata.push_back(std::move(s));
  }
  for (StratumCost& s : report->strata) {
    s.share = total_us == 0 ? 0 : s.wall_us / total_us;
  }
  // std::map iteration already yields ascending stratum index.
}

void BuildForesight(const MetricsSnapshot& metrics, ProfileReport* report) {
  ForesightCost& f = report->foresight;
  if (const GaugeSnapshot* g =
          metrics.FindGauge("chase.foresight.predicted_rounds")) {
    f.analyzed = true;
    f.predicted_rounds = g->value < 0 ? 0 : static_cast<std::uint64_t>(g->value);
  }
  if (const GaugeSnapshot* g =
          metrics.FindGauge("chase.foresight.observed_rounds")) {
    f.analyzed = true;
    f.observed_rounds = g->value < 0 ? 0 : static_cast<std::uint64_t>(g->value);
  }
  if (const GaugeSnapshot* g = metrics.FindGauge("chase.foresight.terminating")) {
    f.analyzed = true;
    f.terminating = g->value != 0;
  }
  if (const CounterSnapshot* c = metrics.FindCounter("chase.foresight.armed")) {
    f.armed = c->value != 0;
    if (f.armed) f.analyzed = true;
  }
}

void BuildStorage(const MetricsSnapshot& metrics, ProfileReport* report) {
  StorageCost& s = report->storage;
  for (const CounterSnapshot& c : metrics.counters) {
    if (c.name == "index.probes") {
      s.index_probes = c.value;
    } else if (c.name == "index.probe_hits") {
      s.index_probe_hits = c.value;
    } else if (c.name == "index.builds") {
      s.index_builds = c.value;
    } else if (c.name == "chase.delta.tuples") {
      s.delta_tuples = c.value;
    } else if (c.name == "chase.delta.rule_skips") {
      s.delta_rule_skips = c.value;
    } else if (c.name == "storage.segment.seals") {
      s.segment_seals = c.value;
    } else if (c.name == "storage.segment.sealed_rows") {
      s.segment_sealed_rows = c.value;
    } else if (c.name == "storage.segment.merges") {
      s.segment_merges = c.value;
    } else if (c.name == "storage.segment.merged_rows") {
      s.segment_merged_rows = c.value;
    } else if (c.name == "storage.segment.compares") {
      s.segment_compares = c.value;
    } else if (c.name == "storage.segment.probes") {
      s.segment_probes = c.value;
    } else if (c.name == "storage.segment.probe_hits") {
      s.segment_probe_hits = c.value;
    } else if (c.name == "storage.segment.skips") {
      s.segment_skips = c.value;
    } else if (c.name == "storage.segment.fallbacks") {
      s.segment_fallbacks = c.value;
    } else if (c.name == "storage.segment.retain_batches") {
      s.segment_retain_batches = c.value;
    } else if (c.name == "storage.segment.retain_candidates") {
      s.segment_retain_candidates = c.value;
    } else if (c.name == "storage.segment.retain_hits") {
      s.segment_retain_hits = c.value;
    } else if (c.name == "storage.segment.compactions") {
      s.segment_compactions = c.value;
    } else if (c.name == "storage.segment.delta_slices") {
      s.segment_delta_slices = c.value;
    } else if (c.name == "storage.segment.delta_slice_rows") {
      s.segment_delta_slice_rows = c.value;
    }
  }
  for (const GaugeSnapshot& g : metrics.gauges) {
    if (g.name == "storage.mode.segmented") {
      s.segmented = g.value != 0;
    } else if (g.name == "storage.segment.live_segments") {
      s.segment_live_segments = static_cast<std::uint64_t>(g.value);
    } else if (g.name == "storage.segment.tiers") {
      s.segment_tiers = static_cast<std::uint64_t>(g.value);
    } else if (g.name == "storage.segment.tail_rows") {
      s.segment_tail_rows = static_cast<std::uint64_t>(g.value);
    }
  }
}

void BuildParallel(const MetricsSnapshot& metrics, ProfileReport* report) {
  ParallelCost& p = report->parallel;
  for (const CounterSnapshot& c : metrics.counters) {
    if (c.name == "chase.parallel.regions") {
      p.regions = c.value;
    } else if (c.name == "chase.parallel.tasks") {
      p.tasks = c.value;
    } else if (c.name == "chase.parallel.steals") {
      p.steals = c.value;
    } else if (c.name == "chase.parallel.busy_us") {
      p.busy_us = static_cast<double>(c.value);
    } else if (c.name == "chase.parallel.wall_us") {
      p.wall_us = static_cast<double>(c.value);
    }
  }
  if (const GaugeSnapshot* g = metrics.FindGauge("chase.parallel.workers")) {
    p.workers = g->value < 0 ? 0 : static_cast<std::uint64_t>(g->value);
  }
  if (const GaugeSnapshot* g =
          metrics.FindGauge("chase.parallel.queue_depth_peak")) {
    p.queue_depth_peak = g->value < 0 ? 0 : static_cast<std::uint64_t>(g->value);
  }
  p.speedup = p.wall_us == 0 ? 0 : p.busy_us / p.wall_us;
  p.efficiency =
      p.workers == 0 ? 0 : p.speedup / static_cast<double>(p.workers);
}

void BuildValues(const MetricsSnapshot& metrics, ProfileReport* report) {
  ValueCost& v = report->values;
  auto gauge = [&metrics](const char* name) -> std::uint64_t {
    const GaugeSnapshot* g = metrics.FindGauge(name);
    return (g == nullptr || g->value < 0) ? 0
                                          : static_cast<std::uint64_t>(g->value);
  };
  v.value_bytes = gauge("value.bytes_per_value");
  v.interned_strings = gauge("value.intern.strings");
  v.interned_bytes = gauge("value.intern.bytes");
  v.intern_hits = gauge("value.intern.hits");
  v.intern_misses = gauge("value.intern.misses");
}

void BuildIncremental(const MetricsSnapshot& metrics, ProfileReport* report) {
  IncrementalCost& i = report->incremental;
  auto counter = [&metrics](const char* name) -> std::uint64_t {
    const CounterSnapshot* c = metrics.FindCounter(name);
    return c == nullptr ? 0 : c->value;
  };
  i.maintains = counter("chase.incremental.maintains");
  i.fallbacks = counter("chase.incremental.fallbacks");
  i.dred_candidates = counter("chase.incremental.dred_candidates");
  i.dred_kept = counter("chase.incremental.dred_kept");
  i.source_inserts = counter("chase.incremental.source_inserts");
  i.source_deletes = counter("chase.incremental.source_deletes");
  i.target_inserts = counter("chase.incremental.target_inserts");
  i.target_deletes = counter("chase.incremental.target_deletes");
  i.latency_us = counter("chase.incremental.latency_us");
}

void BuildPhases(const std::vector<SpanRecord>& spans,
                 ProfileReport* report) {
  if (spans.empty()) return;
  // Self time: a span's duration minus its direct children's durations.
  std::map<std::uint64_t, std::int64_t> children_us;
  for (const SpanRecord& s : spans) {
    if (s.parent_id != 0) children_us[s.parent_id] += s.duration_us;
  }
  std::map<std::string, PhaseCost> phases;
  for (const SpanRecord& s : spans) {
    PhaseCost& phase = phases[s.name];
    ++phase.count;
    phase.total_us += s.duration_us;
    auto it = children_us.find(s.id);
    std::int64_t self =
        s.duration_us - (it == children_us.end() ? 0 : it->second);
    // Clock skew between parent and child reads can push self below zero
    // for sub-microsecond spans; clamp so shares stay meaningful.
    phase.self_us += std::max<std::int64_t>(self, 0);
    phase.max_us = std::max(phase.max_us, s.duration_us);
  }
  for (auto& [name, phase] : phases) {
    phase.name = name;
    report->phase_total_us += phase.self_us;
    report->phases.push_back(std::move(phase));
  }
  for (PhaseCost& phase : report->phases) {
    phase.share = report->phase_total_us == 0
                      ? 0
                      : static_cast<double>(phase.self_us) /
                            static_cast<double>(report->phase_total_us);
  }
  std::sort(report->phases.begin(), report->phases.end(),
            [](const PhaseCost& a, const PhaseCost& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.name < b.name;
            });
}

std::string Percent(double share) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f%%", share * 100.0);
  return buf;
}

std::string Fixed1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

// Renders rows as a padded table: column i is left-aligned when align[i]
// is 'l', right-aligned otherwise.
std::vector<std::string> Tabulate(
    const std::vector<std::vector<std::string>>& rows,
    const std::string& align) {
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::vector<std::string> out;
  for (const auto& row : rows) {
    std::string line = "  ";
    for (std::size_t i = 0; i < row.size(); ++i) {
      bool left = i < align.size() && align[i] == 'l';
      std::size_t pad = widths[i] - row[i].size();
      if (i > 0) line += "  ";
      if (left) {
        line += row[i];
        if (i + 1 < row.size()) line += std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ') + row[i];
      }
    }
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace

const RuleCost* ProfileReport::DominantRule() const {
  return rules.empty() ? nullptr : &rules.front();
}

std::vector<std::string> ProfileReport::Lines() const {
  std::vector<std::string> lines;
  lines.push_back("operators (" + Fixed1(operator_total_us) + "us total):");
  if (operators.empty()) {
    lines.push_back("  (no operator calls recorded)");
  } else {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"operator", "calls", "errs", "total_us", "share",
                    "p50_us", "p95_us", "p99_us", "max_us"});
    for (const OperatorCost& op : operators) {
      rows.push_back({op.name, std::to_string(op.calls),
                      std::to_string(op.errors), Fixed1(op.total_us),
                      Percent(op.share), Fixed1(op.p50_us), Fixed1(op.p95_us),
                      Fixed1(op.p99_us), Fixed1(op.max_us)});
    }
    for (std::string& line : Tabulate(rows, "lrrrrrrrr")) {
      lines.push_back(std::move(line));
    }
  }
  lines.push_back("chase rules (" + Fixed1(rule_total_us) + "us total):");
  if (rules.empty()) {
    lines.push_back("  (no chase recorded)");
  } else {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"rule", "kind", "wall_us", "share", "triggers", "firings",
                    "nulls", "rounds", "rnd_p50", "rnd_p95", "rnd_max"});
    for (const RuleCost& rule : rules) {
      rows.push_back({rule.label, rule.kind, Fixed1(rule.wall_us),
                      Percent(rule.share),
                      std::to_string(rule.triggers_tested),
                      std::to_string(rule.firings),
                      std::to_string(rule.nulls_created),
                      std::to_string(rule.rounds), Fixed1(rule.round_p50_us),
                      Fixed1(rule.round_p95_us), Fixed1(rule.round_max_us)});
    }
    for (std::string& line : Tabulate(rows, "llrrrrrrrrr")) {
      lines.push_back(std::move(line));
    }
    const RuleCost* dominant = DominantRule();
    lines.push_back("dominant rule: " + dominant->label + " (" +
                    Percent(dominant->share) + " of chase rule wall time)");
  }
  if (!strata.empty()) {
    lines.push_back("strata (" + std::to_string(strata.size()) + "):");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"stratum", "rules", "wall_us", "share", "firings"});
    for (const StratumCost& s : strata) {
      rows.push_back({std::to_string(s.index), std::to_string(s.rules),
                      Fixed1(s.wall_us), Percent(s.share),
                      std::to_string(s.firings)});
    }
    for (std::string& line : Tabulate(rows, "rrrrr")) {
      lines.push_back(std::move(line));
    }
  }
  if (foresight.any()) {
    lines.push_back("foresight:");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"termination", foresight.terminating
                                       ? "terminating"
                                       : "potentially non-terminating"});
    rows.push_back({"predicted rounds (bound)",
                    foresight.predicted_rounds ==
                            static_cast<std::uint64_t>(
                                std::numeric_limits<std::int64_t>::max())
                        ? "unbounded"
                        : std::to_string(foresight.predicted_rounds)});
    rows.push_back(
        {"observed rounds", std::to_string(foresight.observed_rounds)});
    rows.push_back({"budget auto-armed", foresight.armed ? "yes" : "no"});
    for (std::string& line : Tabulate(rows, "lr")) {
      lines.push_back(std::move(line));
    }
  }
  lines.push_back("storage:");
  if (!storage.any()) {
    lines.push_back("  (no index activity recorded)");
  } else {
    double hit_rate = storage.index_probes == 0
                          ? 0
                          : static_cast<double>(storage.index_probe_hits) /
                                static_cast<double>(storage.index_probes);
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"index.probes", std::to_string(storage.index_probes)});
    rows.push_back(
        {"index.probe_hits", std::to_string(storage.index_probe_hits)});
    rows.push_back({"index.builds", std::to_string(storage.index_builds)});
    rows.push_back(
        {"chase.delta.tuples", std::to_string(storage.delta_tuples)});
    rows.push_back({"chase.delta.rule_skips",
                    std::to_string(storage.delta_rule_skips)});
    rows.push_back({"tuples/probe", Fixed1(hit_rate)});
    // The segment block (and the mode line) appears only for segmented
    // sessions — indexed sessions keep their exact pre-existing report.
    if (storage.segmented) {
      rows.push_back({"mode", "segmented"});
      rows.push_back(
          {"segment.seals", std::to_string(storage.segment_seals)});
      rows.push_back({"segment.sealed_rows",
                      std::to_string(storage.segment_sealed_rows)});
      rows.push_back(
          {"segment.merges", std::to_string(storage.segment_merges)});
      rows.push_back({"segment.merged_rows",
                      std::to_string(storage.segment_merged_rows)});
      rows.push_back(
          {"segment.compares", std::to_string(storage.segment_compares)});
      rows.push_back(
          {"segment.probes", std::to_string(storage.segment_probes)});
      rows.push_back(
          {"segment.probe_hits", std::to_string(storage.segment_probe_hits)});
      rows.push_back(
          {"segment.skips", std::to_string(storage.segment_skips)});
      rows.push_back(
          {"segment.fallbacks", std::to_string(storage.segment_fallbacks)});
      rows.push_back({"segment.retain_batches",
                      std::to_string(storage.segment_retain_batches)});
      rows.push_back({"segment.retain_candidates",
                      std::to_string(storage.segment_retain_candidates)});
      rows.push_back({"segment.retain_hits",
                      std::to_string(storage.segment_retain_hits)});
      rows.push_back({"segment.compactions",
                      std::to_string(storage.segment_compactions)});
      rows.push_back({"segment.delta_slices",
                      std::to_string(storage.segment_delta_slices)});
      rows.push_back({"segment.delta_slice_rows",
                      std::to_string(storage.segment_delta_slice_rows)});
      // Tier silhouette: how the LSM run list looked when the last run
      // finished (runs x tiers, plus any rows still waiting in the tail).
      rows.push_back({"segment.tier_shape",
                      std::to_string(storage.segment_live_segments) +
                          " runs / " +
                          std::to_string(storage.segment_tiers) + " tiers / " +
                          std::to_string(storage.segment_tail_rows) +
                          " tail rows"});
    }
    for (std::string& line : Tabulate(rows, "lr")) {
      lines.push_back(std::move(line));
    }
  }
  if (parallel.any()) {
    lines.push_back("parallelism:");
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"workers", std::to_string(parallel.workers)});
    rows.push_back({"match regions", std::to_string(parallel.regions)});
    rows.push_back({"match tasks", std::to_string(parallel.tasks)});
    rows.push_back({"steals", std::to_string(parallel.steals)});
    rows.push_back(
        {"queue depth peak", std::to_string(parallel.queue_depth_peak)});
    rows.push_back({"busy_us", Fixed1(parallel.busy_us)});
    rows.push_back({"wall_us", Fixed1(parallel.wall_us)});
    rows.push_back({"speedup", Fixed1(parallel.speedup) + "x"});
    rows.push_back({"efficiency", Percent(parallel.efficiency)});
    for (std::string& line : Tabulate(rows, "lr")) {
      lines.push_back(std::move(line));
    }
  }
  if (values.any()) {
    lines.push_back("values:");
    std::uint64_t lookups = values.intern_hits + values.intern_misses;
    double hit_rate = lookups == 0 ? 0
                                   : static_cast<double>(values.intern_hits) /
                                         static_cast<double>(lookups);
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"bytes/value", std::to_string(values.value_bytes)});
    rows.push_back(
        {"intern.strings", std::to_string(values.interned_strings)});
    rows.push_back({"intern.bytes", std::to_string(values.interned_bytes)});
    rows.push_back({"intern.hits", std::to_string(values.intern_hits)});
    rows.push_back({"intern.misses", std::to_string(values.intern_misses)});
    rows.push_back({"intern hit rate", Percent(hit_rate)});
    for (std::string& line : Tabulate(rows, "lr")) {
      lines.push_back(std::move(line));
    }
  }
  if (incremental.any()) {
    lines.push_back("incremental:");
    double avg_us = static_cast<double>(incremental.latency_us) /
                    static_cast<double>(incremental.maintains);
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"maintains", std::to_string(incremental.maintains)});
    rows.push_back({"fallbacks", std::to_string(incremental.fallbacks)});
    rows.push_back(
        {"dred.candidates", std::to_string(incremental.dred_candidates)});
    rows.push_back({"dred.kept", std::to_string(incremental.dred_kept)});
    rows.push_back({"source +/-",
                    std::to_string(incremental.source_inserts) + " / " +
                        std::to_string(incremental.source_deletes)});
    rows.push_back({"target +/-",
                    std::to_string(incremental.target_inserts) + " / " +
                        std::to_string(incremental.target_deletes)});
    rows.push_back({"latency_us", std::to_string(incremental.latency_us)});
    rows.push_back({"us/maintain", Fixed1(avg_us)});
    for (std::string& line : Tabulate(rows, "lr")) {
      lines.push_back(std::move(line));
    }
  }
  lines.push_back("phases (" + std::to_string(phase_total_us) +
                  "us self-time total):");
  if (phases.empty()) {
    lines.push_back("  (no spans; run under `trace` to collect phases)");
  } else {
    std::vector<std::vector<std::string>> rows;
    rows.push_back(
        {"span", "count", "total_us", "self_us", "share", "max_us"});
    for (const PhaseCost& phase : phases) {
      rows.push_back({phase.name, std::to_string(phase.count),
                      std::to_string(phase.total_us),
                      std::to_string(phase.self_us), Percent(phase.share),
                      std::to_string(phase.max_us)});
    }
    for (std::string& line : Tabulate(rows, "lrrrrr")) {
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

std::string ProfileReport::ToString() const {
  std::string out;
  for (const std::string& line : Lines()) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string ProfileReport::ToJson() const {
  std::ostringstream os;
  os << "{\"operators\": [";
  bool first = true;
  for (const OperatorCost& op : operators) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << JsonEscape(op.name) << "\", \"calls\": "
       << op.calls << ", \"errors\": " << op.errors << ", \"total_us\": "
       << FormatDouble(op.total_us) << ", \"share\": "
       << FormatDouble(op.share) << ", \"p50_us\": "
       << FormatDouble(op.p50_us) << ", \"p95_us\": "
       << FormatDouble(op.p95_us) << ", \"p99_us\": "
       << FormatDouble(op.p99_us) << ", \"max_us\": "
       << FormatDouble(op.max_us) << "}";
  }
  os << "], \"rules\": [";
  first = true;
  for (const RuleCost& rule : rules) {
    if (!first) os << ", ";
    first = false;
    os << "{\"label\": \"" << JsonEscape(rule.label) << "\", \"kind\": \""
       << rule.kind << "\", \"wall_us\": " << FormatDouble(rule.wall_us)
       << ", \"share\": " << FormatDouble(rule.share)
       << ", \"triggers_tested\": " << rule.triggers_tested
       << ", \"firings\": " << rule.firings << ", \"nulls_created\": "
       << rule.nulls_created << ", \"rounds_active\": " << rule.rounds_active
       << ", \"rounds\": " << rule.rounds << ", \"round_p50_us\": "
       << FormatDouble(rule.round_p50_us) << ", \"round_p95_us\": "
       << FormatDouble(rule.round_p95_us) << ", \"round_max_us\": "
       << FormatDouble(rule.round_max_us) << ", \"stratum\": "
       << rule.stratum << "}";
  }
  os << "], \"strata\": [";
  first = true;
  for (const StratumCost& s : strata) {
    if (!first) os << ", ";
    first = false;
    os << "{\"index\": " << s.index << ", \"rules\": " << s.rules
       << ", \"wall_us\": " << FormatDouble(s.wall_us) << ", \"share\": "
       << FormatDouble(s.share) << ", \"firings\": " << s.firings << "}";
  }
  os << "], \"foresight\": {\"analyzed\": "
     << (foresight.analyzed ? "true" : "false") << ", \"terminating\": "
     << (foresight.terminating ? "true" : "false") << ", \"armed\": "
     << (foresight.armed ? "true" : "false") << ", \"predicted_rounds\": "
     << foresight.predicted_rounds << ", \"observed_rounds\": "
     << foresight.observed_rounds << "}, \"phases\": [";
  first = true;
  for (const PhaseCost& phase : phases) {
    if (!first) os << ", ";
    first = false;
    os << "{\"name\": \"" << JsonEscape(phase.name) << "\", \"count\": "
       << phase.count << ", \"total_us\": " << phase.total_us
       << ", \"self_us\": " << phase.self_us << ", \"share\": "
       << FormatDouble(phase.share) << ", \"max_us\": " << phase.max_us
       << "}";
  }
  os << "], \"storage\": {\"index_probes\": " << storage.index_probes
     << ", \"index_probe_hits\": " << storage.index_probe_hits
     << ", \"index_builds\": " << storage.index_builds
     << ", \"delta_tuples\": " << storage.delta_tuples
     << ", \"delta_rule_skips\": " << storage.delta_rule_skips;
  if (storage.segmented) {
    os << ", \"mode\": \"segmented\""
       << ", \"segment_seals\": " << storage.segment_seals
       << ", \"segment_sealed_rows\": " << storage.segment_sealed_rows
       << ", \"segment_merges\": " << storage.segment_merges
       << ", \"segment_merged_rows\": " << storage.segment_merged_rows
       << ", \"segment_compares\": " << storage.segment_compares
       << ", \"segment_probes\": " << storage.segment_probes
       << ", \"segment_probe_hits\": " << storage.segment_probe_hits
       << ", \"segment_skips\": " << storage.segment_skips
       << ", \"segment_fallbacks\": " << storage.segment_fallbacks
       << ", \"segment_retain_batches\": " << storage.segment_retain_batches
       << ", \"segment_retain_candidates\": "
       << storage.segment_retain_candidates
       << ", \"segment_retain_hits\": " << storage.segment_retain_hits
       << ", \"segment_compactions\": " << storage.segment_compactions
       << ", \"segment_delta_slices\": " << storage.segment_delta_slices
       << ", \"segment_delta_slice_rows\": "
       << storage.segment_delta_slice_rows
       << ", \"segment_live_segments\": " << storage.segment_live_segments
       << ", \"segment_tiers\": " << storage.segment_tiers
       << ", \"segment_tail_rows\": " << storage.segment_tail_rows;
  }
  os << "}, \"parallel\": {\"workers\": " << parallel.workers
     << ", \"regions\": " << parallel.regions
     << ", \"tasks\": " << parallel.tasks
     << ", \"steals\": " << parallel.steals
     << ", \"queue_depth_peak\": " << parallel.queue_depth_peak
     << ", \"busy_us\": " << FormatDouble(parallel.busy_us)
     << ", \"wall_us\": " << FormatDouble(parallel.wall_us)
     << ", \"speedup\": " << FormatDouble(parallel.speedup)
     << ", \"efficiency\": " << FormatDouble(parallel.efficiency)
     << "}, \"values\": {\"value_bytes\": " << values.value_bytes
     << ", \"interned_strings\": " << values.interned_strings
     << ", \"interned_bytes\": " << values.interned_bytes
     << ", \"intern_hits\": " << values.intern_hits
     << ", \"intern_misses\": " << values.intern_misses
     << "}, \"incremental\": {\"maintains\": " << incremental.maintains
     << ", \"fallbacks\": " << incremental.fallbacks
     << ", \"dred_candidates\": " << incremental.dred_candidates
     << ", \"dred_kept\": " << incremental.dred_kept
     << ", \"source_inserts\": " << incremental.source_inserts
     << ", \"source_deletes\": " << incremental.source_deletes
     << ", \"target_inserts\": " << incremental.target_inserts
     << ", \"target_deletes\": " << incremental.target_deletes
     << ", \"latency_us\": " << incremental.latency_us
     << "}, \"totals\": {\"operator_total_us\": "
     << FormatDouble(operator_total_us)
     << ", \"rule_total_us\": " << FormatDouble(rule_total_us)
     << ", \"phase_total_us\": " << phase_total_us << "}}";
  return os.str();
}

ProfileReport Profiler::Build(const MetricsSnapshot& metrics,
                              const std::vector<SpanRecord>& spans) {
  ProfileReport report;
  BuildOperators(metrics, &report);
  BuildRules(metrics, &report);
  BuildStrata(metrics, &report);
  BuildForesight(metrics, &report);
  BuildStorage(metrics, &report);
  BuildParallel(metrics, &report);
  BuildValues(metrics, &report);
  BuildIncremental(metrics, &report);
  BuildPhases(spans, &report);
  return report;
}

ProfileReport Profiler::Build(const Context& ctx) {
  return Build(ctx.metrics.Snapshot(), ctx.tracer.Snapshot());
}

}  // namespace mm2::obs
