#ifndef MM2_OBS_OBS_H_
#define MM2_OBS_OBS_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mm2::obs {

// The unit of attachment: one metrics namespace, one span collector, and
// one structured event log (with its flight-recorder ring). Benches and
// tests construct their own Context and hand it to the engine
// (Engine::SetObservability) or to individual operators via their options
// structs — there is no global state. Every instrumentation helper below is
// null-safe, so call sites never branch on "is observability on".
struct Context {
  MetricsRegistry metrics;
  Tracer tracer;
  EventLog events;
};

// RAII span guard. Opens a span on construction (no-op when `ctx` is null
// or tracing is disabled) and closes it on destruction or End().
class ObsSpan {
 public:
  ObsSpan(Context* ctx, const std::string& name)
      : tracer_(ctx == nullptr ? nullptr : &ctx->tracer),
        id_(tracer_ == nullptr ? 0 : tracer_->BeginSpan(name)) {}
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
  ~ObsSpan() { End(); }

  void SetAttribute(const std::string& key, std::string value) {
    if (tracer_ != nullptr) tracer_->SetAttribute(id_, key, std::move(value));
  }
  void SetAttribute(const std::string& key, std::uint64_t value) {
    SetAttribute(key, std::to_string(value));
  }

  void End() {
    if (tracer_ != nullptr && id_ != 0) tracer_->EndSpan(id_);
    id_ = 0;
  }

 private:
  Tracer* tracer_;
  std::uint64_t id_;
};

// RAII latency recorder: on destruction, records elapsed microseconds into
// the named histogram. Null-safe like everything else here.
class ScopedLatency {
 public:
  ScopedLatency(Context* ctx, const std::string& histogram_name)
      : hist_(ctx == nullptr ? nullptr
                             : &ctx->metrics.GetHistogram(histogram_name)),
        start_(std::chrono::steady_clock::now()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (hist_ != nullptr) hist_->Record(ElapsedUs());
  }

  double ElapsedUs() const {
    return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// The per-operator guard the engine wraps every operator call in. For an
// operator `op` it maintains:
//   span       op.<op>                (with caller-set attributes + status)
//   counter    op.<op>.calls
//   counter    op.<op>.errors         (only on non-OK finish)
//   histogram  op.<op>.latency_us
// Use Finish(status) as the return expression so early error paths are
// recorded too; destruction without Finish counts as OK.
class OpSpan {
 public:
  OpSpan(Context* ctx, const std::string& op);
  OpSpan(const OpSpan&) = delete;
  OpSpan& operator=(const OpSpan&) = delete;
  ~OpSpan();

  void SetAttribute(const std::string& key, std::string value) {
    span_.SetAttribute(key, std::move(value));
  }
  void SetAttribute(const std::string& key, std::uint64_t value) {
    span_.SetAttribute(key, value);
  }

  // Records the outcome and passes the status through, so call sites can
  // write `return op.Finish(DoWork());`.
  Status Finish(Status status);

 private:
  Context* ctx_;
  std::string op_;
  ObsSpan span_;
  std::chrono::steady_clock::time_point start_;
  bool finished_ = false;
};

}  // namespace mm2::obs

#endif  // MM2_OBS_OBS_H_
