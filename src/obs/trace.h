#ifndef MM2_OBS_TRACE_H_
#define MM2_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mm2::obs {

// One finished span. Timestamps are microsecond offsets from the tracer's
// epoch (monotonic clock), which is exactly what Chrome's trace_event `ts`
// field wants.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = root span
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  std::uint32_t tid = 0;  // dense per-tracer thread index, for exporters
  std::vector<std::pair<std::string, std::string>> attributes;
};

// A hierarchical span collector. Spans nest per thread: BeginSpan() parents
// the new span under that thread's innermost open span. Disabled tracers
// hand out id 0, which every other call treats as a no-op, so instrumented
// code pays one relaxed atomic load when tracing is off.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Returns the new span's id, or 0 when disabled.
  std::uint64_t BeginSpan(const std::string& name);
  void SetAttribute(std::uint64_t id, const std::string& key,
                    std::string value);
  void EndSpan(std::uint64_t id);

  // Completed spans in start order. Spans still open are not included.
  std::vector<SpanRecord> Snapshot() const;
  std::size_t completed_spans() const;
  void Clear();

  // Indented tree, one span per line: "name (123us) k=v k=v".
  std::string ToText() const;
  // Chrome trace_event JSON object ({"traceEvents": [...]}), loadable by
  // chrome://tracing and https://ui.perfetto.dev.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  std::int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  std::uint32_t ThreadIndexLocked(std::thread::id id);

  std::atomic<bool> enabled_{false};
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, SpanRecord> active_;
  std::vector<SpanRecord> done_;
  std::map<std::thread::id, std::vector<std::uint64_t>> stacks_;
  std::map<std::thread::id, std::uint32_t> thread_index_;
};

}  // namespace mm2::obs

#endif  // MM2_OBS_TRACE_H_
