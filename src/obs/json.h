#ifndef MM2_OBS_JSON_H_
#define MM2_OBS_JSON_H_

// Tiny shared JSON rendering helpers. `explain --json`, `stats --json`, and
// `explain mapping --json` all hand-roll their output; keeping the escaping
// and number formatting here guarantees the three surfaces agree on how a
// metric name or value is spelled.

#include <cstdio>
#include <sstream>
#include <string>

namespace mm2::obs::json {

inline std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

inline std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace mm2::obs::json

#endif  // MM2_OBS_JSON_H_
