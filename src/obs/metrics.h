#ifndef MM2_OBS_METRICS_H_
#define MM2_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mm2::obs {

// A monotonically increasing event count. Lock-free after registration, so
// hot loops (chase rounds, compose combinations) can record freely.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// A value that can move both ways (e.g., live repository size).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// A fixed-bucket histogram. Bucket i counts samples <= bounds[i]; one
// implicit overflow bucket catches the rest. Record() takes a mutex: the
// engine's hot paths record per-operator latencies, not per-tuple ones, so
// contention is negligible and min/max/sum stay exact.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  // Exponential 1-2-5 microsecond ladder from 1us to 10s; the default for
  // every `*_latency_us` histogram in the engine.
  static std::vector<double> DefaultLatencyBoundsUs();

  // -- snapshot accessors (each takes the mutex) --
  std::uint64_t count() const;
  double sum() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const;
  void Reset();

 private:
  const std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// -- point-in-time snapshots ------------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  double mean() const { return count == 0 ? 0 : sum / count; }
  // Linear interpolation within the winning bucket; p in [0,1].
  double Percentile(double p) const;
  // The quantiles every report surfaces (0 when empty; clamped to the
  // observed [min, max] so tiny samples stay truthful).
  double p50() const { return Percentile(0.50); }
  double p95() const { return Percentile(0.95); }
  double p99() const { return Percentile(0.99); }
};

struct MetricsSnapshot {
  // Each list is sorted by name (Snapshot() guarantees it), so printed
  // output is deterministic and golden-output tests are stable.
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* FindCounter(const std::string& name) const;
  const GaugeSnapshot* FindGauge(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  // One human-readable line per metric, e.g.
  //   counter chase.rounds = 12
  //   histogram op.exchange.latency_us count=3 mean=42.1 p50=40 p99=55 max=57
  std::vector<std::string> Lines() const;
  std::string ToString() const;  // Lines() joined with '\n'
  // One JSON object (single line): {"counters": {name: value, ...},
  // "gauges": {...}, "histograms": {name: {count, sum, min, max, mean,
  // p50, p95, p99}, ...}}. Shares the escaping/number formatting of
  // `explain --json` (obs/json.h) so `stats --json` spells metric names
  // and values identically.
  std::string ToJson() const;
};

// The process- or engine-scoped metric namespace. Get*() registers on first
// use and returns a stable reference; the returned objects outlive the
// registry's lock and are safe to cache across calls.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `bounds` applies only on first registration; later calls ignore it.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;
  void Reset();  // zeroes every metric, keeps registrations

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mm2::obs

#endif  // MM2_OBS_METRICS_H_
