#include "obs/event.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string_view>

namespace mm2::obs {

const char* EventLevelName(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug:
      return "debug";
    case EventLevel::kInfo:
      return "info";
    case EventLevel::kWarn:
      return "warn";
    case EventLevel::kError:
      return "error";
  }
  return "info";
}

bool ParseEventLevel(std::string_view name, EventLevel* out) {
  if (name == "debug") {
    *out = EventLevel::kDebug;
  } else if (name == "info") {
    *out = EventLevel::kInfo;
  } else if (name == "warn") {
    *out = EventLevel::kWarn;
  } else if (name == "error") {
    *out = EventLevel::kError;
  } else {
    return false;
  }
  return true;
}

EventField F(std::string key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return {std::move(key), buf, true};
}

namespace {

// Minimal JSON string escaping: quotes, backslashes, and control bytes.
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string Event::ToJson() const {
  char head[96];
  std::snprintf(head, sizeof(head), "{\"seq\": %llu, \"t_us\": %.1f, ",
                static_cast<unsigned long long>(seq), t_us);
  std::string out = head;
  out += "\"level\": \"";
  out += EventLevelName(level);
  out += "\", \"event\": \"";
  AppendJsonEscaped(&out, name);
  out += '"';
  for (const EventField& f : fields) {
    out += ", \"";
    AppendJsonEscaped(&out, f.key);
    out += "\": ";
    if (f.number) {
      out += f.value;
    } else {
      out += '"';
      AppendJsonEscaped(&out, f.value);
      out += '"';
    }
  }
  out += '}';
  return out;
}

std::string Event::ToText() const {
  char head[48];
  std::snprintf(head, sizeof(head), "[%10.1fus] %-5s ", t_us,
                EventLevelName(level));
  std::string out = head;
  out += name;
  for (const EventField& f : fields) {
    out += ' ';
    out += f.key;
    out += '=';
    out += f.value;
  }
  return out;
}

EventLog::EventLog(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      start_(std::chrono::steady_clock::now()) {}

void EventLog::Configure(EventFormat format, std::ostream* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  format_ = format;
  sink_ = sink;
  owned_sink_.reset();
  enabled_.store(format != EventFormat::kOff, std::memory_order_relaxed);
}

Status EventLog::ConfigureFile(EventFormat format, const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file) {
    return Status::InvalidArgument("cannot open log sink '" + path + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  format_ = format;
  owned_sink_ = std::move(file);
  sink_ = owned_sink_.get();
  enabled_.store(format != EventFormat::kOff, std::memory_order_relaxed);
  return Status::OK();
}

void EventLog::ConfigureFromEnv() {
  const char* env = std::getenv("MM2_LOG");
  if (env != nullptr && env[0] != '\0') {
    std::string_view value(env);
    if (value == "json") {
      Configure(EventFormat::kJson, &std::cerr);
    } else if (value == "text") {
      Configure(EventFormat::kText, &std::cerr);
    } else {
      Configure(EventFormat::kOff);
    }
  }
  const char* level_env = std::getenv("MM2_LOG_LEVEL");
  if (level_env != nullptr && level_env[0] != '\0') {
    EventLevel level = EventLevel::kDebug;
    if (ParseEventLevel(level_env, &level)) SetMinLevel(level);
  }
}

EventFormat EventLog::format() const {
  std::lock_guard<std::mutex> lock(mu_);
  return format_;
}

void EventLog::SetMinLevel(EventLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  min_level_ = level;
}

EventLevel EventLog::min_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_level_;
}

void EventLog::Emit(EventLevel level, std::string name,
                    std::vector<EventField> fields) {
  if (!enabled()) return;
  double t_us = std::chrono::duration_cast<
                    std::chrono::duration<double, std::micro>>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
  std::lock_guard<std::mutex> lock(mu_);
  if (format_ == EventFormat::kOff || level < min_level_) return;
  Event event;
  event.level = level;
  event.seq = ++seq_;
  event.t_us = t_us;
  event.name = std::move(name);
  event.fields = std::move(fields);
  if (sink_ != nullptr) {
    // Flush per event: the log is a live debugging surface, and heartbeats
    // arrive per chase round, not per tuple, so the write rate is low.
    *sink_ << (format_ == EventFormat::kJson ? event.ToJson()
                                             : event.ToText())
           << '\n'
           << std::flush;
  }
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % ring_capacity_;
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Event> EventLog::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < ring_capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_capacity_]);
    }
  }
  return out;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

std::string EventLog::DumpRecent() const {
  std::vector<Event> events = Recent();
  if (events.empty()) return "";
  std::string out = "-- flight recorder (last " +
                    std::to_string(events.size()) + " events) --";
  for (const Event& e : events) {
    out += "\n  ";
    out += e.ToText();
  }
  return out;
}

void CancelToken::RequestStop(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (reason_.empty()) reason_ = std::move(reason);
  }
  stop_.store(true, std::memory_order_relaxed);
}

std::string CancelToken::reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reason_;
}

void CancelToken::Reset() {
  stop_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  reason_.clear();
}

namespace {

double ProcStatusKb(const char* field) {
  std::ifstream status("/proc/self/status");
  std::string line;
  std::size_t field_len = std::char_traits<char>::length(field);
  while (std::getline(status, line)) {
    if (line.compare(0, field_len, field) == 0) {
      return std::strtod(line.c_str() + field_len, nullptr);
    }
  }
  return 0;
}

}  // namespace

double PeakRssKb() { return ProcStatusKb("VmHWM:"); }
double CurrentRssKb() { return ProcStatusKb("VmRSS:"); }

}  // namespace mm2::obs
