#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mm2::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::uint32_t Tracer::ThreadIndexLocked(std::thread::id id) {
  auto it = thread_index_.find(id);
  if (it != thread_index_.end()) return it->second;
  std::uint32_t index = static_cast<std::uint32_t>(thread_index_.size() + 1);
  thread_index_.emplace(id, index);
  return index;
}

std::uint64_t Tracer::BeginSpan(const std::string& name) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t id = next_id_++;
  std::thread::id thread = std::this_thread::get_id();
  std::vector<std::uint64_t>& stack = stacks_[thread];
  SpanRecord record;
  record.id = id;
  record.parent_id = stack.empty() ? 0 : stack.back();
  record.name = name;
  record.start_us = NowUs();
  record.tid = ThreadIndexLocked(thread);
  stack.push_back(id);
  active_.emplace(id, std::move(record));
  return id;
}

void Tracer::SetAttribute(std::uint64_t id, const std::string& key,
                          std::string value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  it->second.attributes.emplace_back(key, std::move(value));
}

void Tracer::EndSpan(std::uint64_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  SpanRecord record = std::move(it->second);
  active_.erase(it);
  record.duration_us = NowUs() - record.start_us;
  // Unwind this thread's stack down to (and including) the span; spans that
  // outlived their parent are closed implicitly by the pop.
  for (auto& [thread, stack] : stacks_) {
    auto pos = std::find(stack.begin(), stack.end(), id);
    if (pos != stack.end()) {
      stack.erase(pos, stack.end());
      break;
    }
  }
  done_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> spans = done_;
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.id < b.id;
            });
  return spans;
}

std::size_t Tracer::completed_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.clear();
  done_.clear();
  stacks_.clear();
}

std::string Tracer::ToText() const {
  std::vector<SpanRecord> spans = Snapshot();
  // Depth = chain length to the root via parent ids.
  std::map<std::uint64_t, std::uint64_t> parent_of;
  for (const SpanRecord& s : spans) parent_of[s.id] = s.parent_id;
  std::ostringstream os;
  for (const SpanRecord& s : spans) {
    std::size_t depth = 0;
    for (std::uint64_t p = s.parent_id; p != 0; p = parent_of[p]) ++depth;
    os << std::string(depth * 2, ' ') << s.name << " (" << s.duration_us
       << "us)";
    for (const auto& [k, v] : s.attributes) os << ' ' << k << '=' << v;
    os << '\n';
  }
  return os.str();
}

std::string Tracer::ToChromeJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": \"" << JsonEscape(s.name)
       << "\", \"cat\": \"mm2\", \"ph\": \"X\", \"ts\": " << s.start_us
       << ", \"dur\": " << s.duration_us << ", \"pid\": 1, \"tid\": " << s.tid
       << ", \"args\": {";
    bool first_arg = true;
    for (const auto& [k, v] : s.attributes) {
      if (!first_arg) os << ", ";
      first_arg = false;
      os << "\"" << JsonEscape(k) << "\": \"" << JsonEscape(v) << "\"";
    }
    os << "}}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open trace file '" + path + "'");
  }
  out << ToChromeJson();
  out.flush();
  if (!out) {
    return Status::Internal("failed writing trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace mm2::obs
