#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"

namespace mm2::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  ++counts_[bucket];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

std::vector<double> Histogram::DefaultLatencyBoundsUs() {
  std::vector<double> bounds;
  for (double decade = 1; decade <= 1e6; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2);
    bounds.push_back(decade * 5);
  }
  bounds.push_back(1e7);  // 10s; anything slower lands in overflow
  return bounds;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}
double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}
double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}
double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}
std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}
void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.assign(bounds_.size() + 1, 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  double rank = p * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= rank && counts[i] > 0) {
      // Interpolate inside [lower, upper) of the winning bucket, clamped to
      // the observed extrema so tiny samples stay truthful.
      double lower = i == 0 ? 0 : bounds[i - 1];
      double upper = i < bounds.size() ? bounds[i] : max;
      double prev = static_cast<double>(seen - counts[i]);
      double frac = (rank - prev) / static_cast<double>(counts[i]);
      double value = lower + frac * (upper - lower);
      return std::clamp(value, min, max);
    }
  }
  return max;
}

const CounterSnapshot* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}
const GaugeSnapshot* MetricsSnapshot::FindGauge(const std::string& name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}
const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

std::vector<std::string> MetricsSnapshot::Lines() const {
  std::vector<std::string> lines;
  for (const CounterSnapshot& c : counters) {
    lines.push_back("counter " + c.name + " = " + std::to_string(c.value));
  }
  for (const GaugeSnapshot& g : gauges) {
    lines.push_back("gauge " + g.name + " = " + std::to_string(g.value));
  }
  for (const HistogramSnapshot& h : histograms) {
    lines.push_back("histogram " + h.name + " count=" +
                    std::to_string(h.count) + " mean=" +
                    FormatDouble(h.mean()) + " p50=" +
                    FormatDouble(h.p50()) + " p95=" +
                    FormatDouble(h.p95()) + " p99=" +
                    FormatDouble(h.p99()) + " max=" +
                    FormatDouble(h.max));
  }
  return lines;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  for (const std::string& line : Lines()) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const CounterSnapshot& c : counters) {
    if (!first) os << ", ";
    first = false;
    os << '"' << json::Escape(c.name) << "\": " << c.value;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const GaugeSnapshot& g : gauges) {
    if (!first) os << ", ";
    first = false;
    os << '"' << json::Escape(g.name) << "\": " << g.value;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    if (!first) os << ", ";
    first = false;
    os << '"' << json::Escape(h.name) << "\": {\"count\": " << h.count
       << ", \"sum\": " << json::FormatDouble(h.sum)
       << ", \"min\": " << json::FormatDouble(h.min)
       << ", \"max\": " << json::FormatDouble(h.max)
       << ", \"mean\": " << json::FormatDouble(h.mean())
       << ", \"p50\": " << json::FormatDouble(h.p50())
       << ", \"p95\": " << json::FormatDouble(h.p95())
       << ", \"p99\": " << json::FormatDouble(h.p99()) << "}";
  }
  os << "}}";
  return os.str();
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBoundsUs();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = hist->bounds();
    h.counts = hist->bucket_counts();
    h.count = hist->count();
    h.sum = hist->sum();
    h.min = hist->min();
    h.max = hist->max();
    snap.histograms.push_back(std::move(h));
  }
  // The registration maps iterate in name order already, but the snapshot's
  // determinism is a documented contract (stats golden tests rely on it) —
  // keep it independent of the container choice.
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace mm2::obs
