#ifndef MM2_OBS_PROFILE_H_
#define MM2_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mm2::obs {

struct Context;

// One engine operator's aggregate cost, read from the `op.<name>.*` metric
// family. Quantiles come from the operator's latency histogram.
struct OperatorCost {
  std::string name;  // "compose", "exchange", ...
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
  double total_us = 0;  // histogram sum across all calls
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double max_us = 0;
  double share = 0;  // fraction of the summed operator time
};

// One chase constraint's attributed cost, read from the
// `chase.rule.<label>.*` family that chase::MirrorStats publishes.
struct RuleCost {
  std::string label;  // "tgd0:Data->Left+Right", "egd0:R:x=y", ...
  std::string kind;   // "tgd" | "egd" | "so_tgd"
  double wall_us = 0;
  std::uint64_t triggers_tested = 0;
  std::uint64_t firings = 0;
  std::uint64_t nulls_created = 0;
  std::uint64_t rounds_active = 0;
  // Per-round wall-time distribution (from the rule's round_us histogram).
  std::uint64_t rounds = 0;
  double round_p50_us = 0;
  double round_p95_us = 0;
  double round_max_us = 0;
  double share = 0;  // fraction of the summed rule wall time
  // Stratum assigned by mapping analysis (-1 when the chase ran unanalyzed);
  // read from the `chase.rule.<label>.stratum` gauge.
  std::int64_t stratum = -1;
};

// One stratum's aggregate cost under stratified scheduling, read from the
// `chase.stratum.<i>.*` family. Only populated for analyzed runs.
struct StratumCost {
  std::size_t index = 0;
  std::uint64_t rules = 0;    // rules assigned to this stratum
  double wall_us = 0;         // summed member-rule wall time
  std::uint64_t firings = 0;  // summed member-rule firings
  double share = 0;           // fraction of the summed stratum wall time
};

// Termination foresight read back from the `chase.foresight.*` family:
// what the static classifier predicted versus what the chase observed.
struct ForesightCost {
  bool analyzed = false;      // any foresight metric present
  bool terminating = false;   // classifier verdict
  bool armed = false;         // watchdog budget auto-armed
  std::uint64_t predicted_rounds = 0;  // static upper bound (saturating)
  std::uint64_t observed_rounds = 0;   // what the chase actually took

  bool any() const { return analyzed; }
};

// One span name aggregated across the tree — the "phase" view. self_us is
// total_us minus the time spent in child spans, so a phase that merely
// wraps others ranks below the phases doing the work.
struct PhaseCost {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t total_us = 0;
  std::int64_t self_us = 0;
  std::int64_t max_us = 0;
  double share = 0;  // fraction of the summed self time
};

// Storage-layer telemetry: index probe traffic and semi-naive delta sizes,
// read from the `index.*` / `chase.delta.*` counters that the chase (and
// the engine, for algebra evaluation) mirror into the registry. The hit
// rate and delta volume are how `explain` attributes the time the indexed
// executor saved over rescanning.
struct StorageCost {
  std::uint64_t index_probes = 0;
  std::uint64_t index_probe_hits = 0;  // tuples yielded across all probes
  std::uint64_t index_builds = 0;      // lazy index constructions
  std::uint64_t delta_tuples = 0;      // tuples consumed by delta re-matches
  std::uint64_t delta_rule_skips = 0;  // rule-rounds skipped (empty deltas)
  // Columnar-segment telemetry, read from the `storage.segment.*` family
  // that segmented chase runs mirror. All zero for indexed sessions.
  bool segmented = false;                   // any segmented run recorded
  std::uint64_t segment_seals = 0;          // segments sealed (tail/rebuild)
  std::uint64_t segment_sealed_rows = 0;    // rows across sealed segments
  std::uint64_t segment_merges = 0;         // segment merge operations
  std::uint64_t segment_merged_rows = 0;    // rows written by merges
  std::uint64_t segment_compares = 0;       // tuple compares (all segment ops)
  std::uint64_t segment_probes = 0;         // prefix probes served
  std::uint64_t segment_probe_hits = 0;     // probes with a non-empty range
  std::uint64_t segment_skips = 0;          // probes skipped via min/max
  std::uint64_t segment_fallbacks = 0;      // ops deferred to set/index path
  std::uint64_t segment_retain_batches = 0; // batched head anti-joins
  std::uint64_t segment_retain_candidates = 0;  // tuples across batches
  std::uint64_t segment_retain_hits = 0;    // candidates already present
  std::uint64_t segment_compactions = 0;    // tiered run merges (LSM ladder)
  std::uint64_t segment_delta_slices = 0;   // zero-copy delta-view slices
  std::uint64_t segment_delta_slice_rows = 0;  // rows served via slices
  // Tier-shape gauges: the segment list's final silhouette (last run wins).
  std::uint64_t segment_live_segments = 0;  // sealed runs across relations
  std::uint64_t segment_tiers = 0;          // distinct geometric size classes
  std::uint64_t segment_tail_rows = 0;      // unsealed sorted-tail rows

  bool any() const {
    return index_probes != 0 || index_probe_hits != 0 || index_builds != 0 ||
           delta_tuples != 0 || delta_rule_skips != 0 || segmented;
  }
};

// Parallel-executor telemetry, read from the `chase.parallel.*` family the
// chase mirrors for runs with more than one worker. speedup is summed
// worker busy time over fan-out wall time (how many cores the match phase
// actually kept busy); efficiency normalizes by the worker count.
struct ParallelCost {
  std::uint64_t workers = 0;          // 0 = no parallel run recorded
  std::uint64_t regions = 0;          // partitioned match fan-outs
  std::uint64_t tasks = 0;            // chunks executed across regions
  std::uint64_t steals = 0;           // pool work-stealing events
  std::uint64_t queue_depth_peak = 0; // max pending tasks observed
  double busy_us = 0;                 // summed per-chunk worker time
  double wall_us = 0;                 // summed fan-out wall time
  double speedup = 0;                 // busy_us / wall_us
  double efficiency = 0;              // speedup / workers

  bool any() const { return workers > 1; }
};

// Value-layer telemetry: the process-wide string intern pool behind the
// compact Value representation, read from the `value.*` gauges that
// chase::MirrorValueStats refreshes. The hit rate is how often string
// construction resolved to an already-pooled id (hash computed once, ever);
// interned_bytes is the deduplicated payload the pool holds.
struct ValueCost {
  std::uint64_t value_bytes = 0;       // sizeof(Value) in this build
  std::uint64_t interned_strings = 0;  // distinct pooled strings
  std::uint64_t interned_bytes = 0;    // summed pooled payload bytes
  std::uint64_t intern_hits = 0;       // Intern() calls resolved to known ids
  std::uint64_t intern_misses = 0;     // Intern() calls that inserted

  bool any() const {
    return interned_strings != 0 || intern_hits != 0 || intern_misses != 0;
  }
};

// Incremental-maintenance telemetry, read from the `chase.incremental.*`
// family that runtime::MaintainExchange mirrors. All zero until a maintain
// runs, so one-shot sessions keep their exact pre-existing report.
struct IncrementalCost {
  std::uint64_t maintains = 0;        // MaintainExchange calls served
  std::uint64_t fallbacks = 0;        // of which rebuilt via full re-chase
  std::uint64_t dred_candidates = 0;  // DRed over-estimated target facts
  std::uint64_t dred_kept = 0;        // facts kept via surviving witnesses
  std::uint64_t source_inserts = 0;   // source tuples inserted across deltas
  std::uint64_t source_deletes = 0;   // source tuples deleted across deltas
  std::uint64_t target_inserts = 0;   // induced target insertions
  std::uint64_t target_deletes = 0;   // induced target deletions
  std::uint64_t latency_us = 0;       // summed maintain wall time

  bool any() const { return maintains != 0; }
};

// A structured cost report: "where did the time go?" answered three ways.
// Each table is ranked most-expensive-first.
struct ProfileReport {
  std::vector<OperatorCost> operators;  // by total_us desc
  std::vector<RuleCost> rules;          // by wall_us desc
  std::vector<PhaseCost> phases;        // by self_us desc (empty w/o tracing)
  std::vector<StratumCost> strata;      // by index asc (empty w/o analysis)
  StorageCost storage;
  ParallelCost parallel;
  ValueCost values;
  IncrementalCost incremental;
  ForesightCost foresight;
  double operator_total_us = 0;
  double rule_total_us = 0;
  std::int64_t phase_total_us = 0;  // summed self time

  // The most expensive chase constraint, or nullptr when no chase ran.
  const RuleCost* DominantRule() const;

  // Ranked, human-readable cost tables (one string per output line).
  std::vector<std::string> Lines() const;
  std::string ToString() const;  // Lines() joined with '\n'
  // Machine form: {"operators": [...], "rules": [...], "phases": [...]}.
  std::string ToJson() const;
};

// Turns raw telemetry into ProfileReports. Stateless: Build() works off a
// metrics snapshot plus (optionally empty, when tracing is off) completed
// spans, so it can run over live contexts and over deserialized data alike.
class Profiler {
 public:
  static ProfileReport Build(const MetricsSnapshot& metrics,
                             const std::vector<SpanRecord>& spans);
  // Convenience: snapshots both sides of `ctx`.
  static ProfileReport Build(const Context& ctx);
};

}  // namespace mm2::obs

#endif  // MM2_OBS_PROFILE_H_
