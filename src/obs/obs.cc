#include "obs/obs.h"

namespace mm2::obs {

OpSpan::OpSpan(Context* ctx, const std::string& op)
    : ctx_(ctx),
      op_(op),
      span_(ctx, "op." + op),
      start_(std::chrono::steady_clock::now()) {
  if (ctx_ != nullptr) ctx_->metrics.GetCounter("op." + op_ + ".calls").Increment();
}

OpSpan::~OpSpan() {
  if (!finished_) Finish(Status::OK());
}

Status OpSpan::Finish(Status status) {
  if (finished_) return status;
  finished_ = true;
  if (ctx_ != nullptr) {
    double elapsed_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - start_)
            .count();
    ctx_->metrics.GetHistogram("op." + op_ + ".latency_us").Record(elapsed_us);
    if (!status.ok()) {
      ctx_->metrics.GetCounter("op." + op_ + ".errors").Increment();
    }
  }
  span_.SetAttribute("status", status.ok()
                                   ? std::string("OK")
                                   : std::string(StatusCodeToString(
                                         status.code())));
  span_.End();
  return status;
}

}  // namespace mm2::obs
