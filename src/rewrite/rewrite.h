#ifndef MM2_REWRITE_REWRITE_H_
#define MM2_REWRITE_REWRITE_H_

#include <vector>

#include "common/result.h"
#include "instance/instance.h"
#include "logic/formula.h"
#include "logic/mapping.h"

namespace mm2::rewrite {

// Query answering *through* a mapping (the query-mediator face of the
// runtime, Section 5): given a conjunctive query over the target schema,
// compute its certain answers using only the source database — no target
// materialization. The query is resolved against the mapping's (skolemized)
// rules exactly the way Compose resolves mid-schema atoms, yielding
// source-level rule bodies whose matches produce answer rows; rows whose
// head would contain a Skolem value (an unknown existential) are not
// certain and are dropped, mirroring the labeled-null rule of Section 4.
//
// For s-t tgd mappings this agrees with chase-then-CertainAnswers (the
// tests check the equivalence), while touching only the parts of the
// source the query needs.
struct RewriteResult {
  // One source-level rule per successful resolution; exposed for
  // inspection and for the peer-to-peer chain API below.
  logic::SoTgd rules;
  std::size_t resolutions = 0;
  std::size_t dropped_unresolvable = 0;
};

// Rewrites `query` (over mapping.target()) into source-level rules.
Result<RewriteResult> RewriteQuery(const logic::Mapping& mapping,
                                   const logic::ConjunctiveQuery& query);

// Evaluates a rewriting against the source database: matches each rule
// body, instantiates the head, and keeps fully-constant rows (certain
// answers).
Result<std::vector<instance::Tuple>> EvaluateRewriting(
    const RewriteResult& rewriting, const instance::Instance& source);

// One-call form.
Result<std::vector<instance::Tuple>> AnswerOnSource(
    const logic::Mapping& mapping, const logic::ConjunctiveQuery& query,
    const instance::Instance& source);

// Peer-to-peer query propagation (Section 5, "Peer-to-peer"): a query over
// the last schema of a mapping chain T <= S1 <= ... <= Sn is pushed through
// every hop down to the first source and answered there. `chain` is ordered
// source-to-target: chain[0]: S0 => S1, ..., chain[n-1]: S(n-1) => Sn; the
// query ranges over Sn and the data lives in S0.
Result<std::vector<instance::Tuple>> AnswerThroughChain(
    const std::vector<logic::Mapping>& chain,
    const logic::ConjunctiveQuery& query, const instance::Instance& source);

}  // namespace mm2::rewrite

#endif  // MM2_REWRITE_REWRITE_H_
