#include "rewrite/rewrite.h"

#include <optional>
#include <set>
#include <utility>

#include "chase/chase.h"
#include "compose/compose.h"

namespace mm2::rewrite {

using instance::Instance;
using instance::Tuple;
using instance::Value;
using logic::Atom;
using logic::ConjunctiveQuery;
using logic::Mapping;
using logic::SoTgdClause;
using logic::Term;
using logic::Tgd;

Result<RewriteResult> RewriteQuery(const Mapping& mapping,
                                   const ConjunctiveQuery& query) {
  MM2_RETURN_IF_ERROR(query.Validate());
  // Pose the query as a one-rule mapping target => {answer relation} and
  // resolve it against the mapping with the Compose machinery.
  model::Schema answer_schema("q_answer", model::Metamodel::kRelational);
  std::vector<model::Attribute> attrs;
  for (std::size_t i = 0; i < query.head.terms.size(); ++i) {
    attrs.push_back({"c" + std::to_string(i),
                     model::DataType::String(), false});
  }
  answer_schema.AddRelation(
      model::Relation(query.head.relation, std::move(attrs)));
  Tgd as_rule;
  as_rule.body = query.body;
  as_rule.head = {query.head};
  Mapping query_mapping = Mapping::FromTgds(
      "q", mapping.target(), std::move(answer_schema), {as_rule});

  compose::ComposeStats stats;
  MM2_ASSIGN_OR_RETURN(Mapping composed,
                       compose::Compose(mapping, query_mapping, {}, &stats));
  RewriteResult result;
  result.rules = composed.Skolemized();
  result.resolutions = stats.combinations_examined;
  result.dropped_unresolvable = stats.clauses_unresolvable;
  return result;
}

namespace {

// A ground evaluation of a term: either a value or a ground Skolem term
// (unknown existential). Ground Skolem terms compare structurally.
std::optional<Term> GroundTerm(const Term& term,
                               const chase::Assignment& assignment) {
  switch (term.kind()) {
    case Term::Kind::kConstant:
      return term;
    case Term::Kind::kVariable: {
      auto it = assignment.find(term.name());
      if (it == assignment.end()) return std::nullopt;
      return Term::Const(it->second);
    }
    case Term::Kind::kFunction: {
      std::vector<Term> args;
      args.reserve(term.args().size());
      for (const Term& arg : term.args()) {
        std::optional<Term> g = GroundTerm(arg, assignment);
        if (!g.has_value()) return std::nullopt;
        args.push_back(std::move(*g));
      }
      return Term::Func(term.name(), std::move(args));
    }
  }
  return std::nullopt;
}

}  // namespace

Result<std::vector<Tuple>> EvaluateRewriting(const RewriteResult& rewriting,
                                             const Instance& source) {
  std::set<Tuple> answers;
  for (const SoTgdClause& clause : rewriting.rules.clauses) {
    for (const chase::Assignment& assignment :
         chase::MatchAtoms(clause.body, source)) {
      // Equalities: certain only when both sides ground to the same term
      // (two equal constants, or structurally identical Skolem terms).
      bool certain = true;
      for (const auto& [l, r] : clause.equalities) {
        std::optional<Term> gl = GroundTerm(l, assignment);
        std::optional<Term> gr = GroundTerm(r, assignment);
        if (!gl.has_value() || !gr.has_value() || !(*gl == *gr)) {
          certain = false;
          break;
        }
      }
      if (!certain) continue;
      for (const Atom& head : clause.head) {
        Tuple row;
        row.reserve(head.terms.size());
        bool ground_constants = true;
        for (const Term& t : head.terms) {
          std::optional<Term> g = GroundTerm(t, assignment);
          if (!g.has_value() || !g->is_constant() ||
              g->value().is_labeled_null()) {
            ground_constants = false;
            break;
          }
          row.push_back(g->value());
        }
        if (ground_constants) answers.insert(std::move(row));
      }
    }
  }
  return std::vector<Tuple>(answers.begin(), answers.end());
}

Result<std::vector<Tuple>> AnswerOnSource(const Mapping& mapping,
                                          const ConjunctiveQuery& query,
                                          const Instance& source) {
  MM2_ASSIGN_OR_RETURN(RewriteResult rewriting,
                       RewriteQuery(mapping, query));
  return EvaluateRewriting(rewriting, source);
}

Result<std::vector<Tuple>> AnswerThroughChain(
    const std::vector<Mapping>& chain, const ConjunctiveQuery& query,
    const Instance& source) {
  if (chain.empty()) {
    return Status::InvalidArgument("empty mapping chain");
  }
  Mapping composed = chain.front();
  for (std::size_t i = 1; i < chain.size(); ++i) {
    MM2_ASSIGN_OR_RETURN(composed, compose::Compose(composed, chain[i]));
  }
  return AnswerOnSource(composed, query, source);
}

}  // namespace mm2::rewrite
