#include "workload/generators.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/strings.h"
#include "logic/formula.h"

namespace mm2::workload {

using instance::Instance;
using instance::Tuple;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using model::DataType;
using model::Metamodel;
using model::Schema;

std::uint64_t Rng::Next() {
  state_ ^= state_ << 13;
  state_ ^= state_ >> 7;
  state_ ^= state_ << 17;
  return state_;
}

std::size_t Rng::Uniform(std::size_t n) {
  return n == 0 ? 0 : static_cast<std::size_t>(Next() % n);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) /
         static_cast<double>(1ULL << 53);
}

namespace {

const char* kWords[] = {"customer", "order",   "invoice", "product",
                        "shipment", "account", "region",  "employee",
                        "supplier", "payment", "address", "contact",
                        "category", "price",   "status",  "date"};
constexpr std::size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

std::string RandomName(Rng* rng, std::size_t salt) {
  std::string a = kWords[rng->Uniform(kWordCount)];
  std::string b = kWords[rng->Uniform(kWordCount)];
  a[0] = static_cast<char>(a[0] - 'a' + 'A');
  b[0] = static_cast<char>(b[0] - 'a' + 'A');
  return a + b + std::to_string(salt);
}

model::DataTypeRef RandomType(Rng* rng) {
  switch (rng->Uniform(4)) {
    case 0:
      return DataType::Int64();
    case 1:
      return DataType::Double();
    case 2:
      return DataType::Date();
    default:
      return DataType::String();
  }
}

Value RandomValueOf(const model::DataTypeRef& type, Rng* rng) {
  if (!type->is_primitive()) return Value::Null();
  switch (type->primitive()) {
    case model::PrimitiveType::kInt64:
      return Value::Int64(static_cast<std::int64_t>(rng->Uniform(1000000)));
    case model::PrimitiveType::kDouble:
      return Value::Double(rng->UniformDouble() * 1000.0);
    case model::PrimitiveType::kBool:
      return Value::Bool(rng->Chance(0.5));
    case model::PrimitiveType::kDate:
      return Value::Date(static_cast<std::int64_t>(rng->Uniform(20000)));
    case model::PrimitiveType::kString:
      return Value::String(std::string(kWords[rng->Uniform(kWordCount)]) +
                           std::to_string(rng->Uniform(10000)));
  }
  return Value::Null();
}

}  // namespace

Schema RandomRelationalSchema(const std::string& name, std::size_t relations,
                              std::size_t max_attrs, Rng* rng) {
  Schema schema(name, Metamodel::kRelational);
  for (std::size_t r = 0; r < relations; ++r) {
    std::vector<model::Attribute> attrs;
    attrs.push_back({"Id", DataType::Int64(), false});
    std::size_t extra =
        1 + rng->Uniform(max_attrs > 1 ? max_attrs - 1 : 1);
    std::set<std::string> names = {"Id"};
    for (std::size_t a = 0; a < extra; ++a) {
      std::string attr_name = RandomName(rng, a);
      if (!names.insert(attr_name).second) continue;
      attrs.push_back({attr_name, RandomType(rng), rng->Chance(0.2)});
    }
    schema.AddRelation(
        model::Relation(RandomName(rng, r) + "_R", std::move(attrs), {0}));
  }
  return schema;
}

Instance RandomInstance(const Schema& schema, std::size_t rows, Rng* rng) {
  Instance db = Instance::EmptyFor(schema);
  for (const model::Relation& r : schema.relations()) {
    for (std::size_t i = 0; i < rows; ++i) {
      Tuple t;
      t.reserve(r.arity());
      for (std::size_t a = 0; a < r.arity(); ++a) {
        if (r.IsKeyAttribute(a)) {
          t.push_back(Value::Int64(static_cast<std::int64_t>(i)));
        } else {
          t.push_back(RandomValueOf(r.attribute(a).type, rng));
        }
      }
      db.InsertUnchecked(r.name(), std::move(t));
    }
  }
  return db;
}

SnowflakePair MakeSnowflakePair(std::size_t dims, std::size_t attrs_per_dim) {
  SnowflakePair pair;
  pair.source = Schema("SnowSrc", Metamodel::kRelational);
  pair.target = Schema("SnowTgt", Metamodel::kRelational);
  pair.source_root = "Fact";
  pair.target_root = "FactT";

  // Source root: key + one FK per dimension. Target root: a flat universal
  // relation holding the key and every dimension attribute (the Fig. 4
  // Staff shape).
  std::vector<model::Attribute> src_root_attrs = {
      {"FactId", DataType::Int64(), false}};
  std::vector<model::Attribute> tgt_root_attrs = {
      {"RowId", DataType::Int64(), false}};
  for (std::size_t d = 0; d < dims; ++d) {
    src_root_attrs.push_back(
        {"D" + std::to_string(d) + "Ref", DataType::Int64(), false});
  }
  pair.correspondences.push_back(
      {{pair.source_root, "FactId"}, {pair.target_root, "RowId"}, 1.0});

  for (std::size_t d = 0; d < dims; ++d) {
    std::vector<model::Attribute> dim_attrs = {
        {"DimId", DataType::Int64(), false}};
    for (std::size_t a = 0; a < attrs_per_dim; ++a) {
      std::string attr = "D" + std::to_string(d) + "A" + std::to_string(a);
      dim_attrs.push_back({attr, DataType::String(), false});
      tgt_root_attrs.push_back({attr + "_t", DataType::String(), false});
      pair.correspondences.push_back(
          {{"Dim" + std::to_string(d), attr},
           {pair.target_root, attr + "_t"},
           1.0});
    }
    pair.source.AddRelation(model::Relation("Dim" + std::to_string(d),
                                            std::move(dim_attrs), {0}));
  }
  pair.source.AddRelation(
      model::Relation(pair.source_root, std::move(src_root_attrs), {0}));
  for (std::size_t d = 0; d < dims; ++d) {
    pair.source.AddForeignKey(model::ForeignKey{
        pair.source_root,
        {"D" + std::to_string(d) + "Ref"},
        "Dim" + std::to_string(d),
        {"DimId"}});
  }
  pair.target.AddRelation(
      model::Relation(pair.target_root, std::move(tgt_root_attrs), {0}));
  return pair;
}

Instance MakeSnowflakeInstance(const SnowflakePair& pair, std::size_t facts,
                               Rng* rng) {
  Instance db = Instance::EmptyFor(pair.source);
  std::size_t dims = pair.source.relations().size() - 1;
  std::size_t dim_rows = std::max<std::size_t>(1, facts / 4);
  for (std::size_t d = 0; d < dims; ++d) {
    const model::Relation* dim =
        pair.source.FindRelation("Dim" + std::to_string(d));
    for (std::size_t i = 0; i < dim_rows; ++i) {
      Tuple t = {Value::Int64(static_cast<std::int64_t>(i))};
      for (std::size_t a = 1; a < dim->arity(); ++a) {
        t.push_back(RandomValueOf(dim->attribute(a).type, rng));
      }
      db.InsertUnchecked(dim->name(), std::move(t));
    }
  }
  for (std::size_t i = 0; i < facts; ++i) {
    Tuple t = {Value::Int64(static_cast<std::int64_t>(i))};
    for (std::size_t d = 0; d < dims; ++d) {
      t.push_back(Value::Int64(static_cast<std::int64_t>(
          rng->Uniform(dim_rows))));
    }
    db.InsertUnchecked(pair.source_root, std::move(t));
  }
  return db;
}

Schema MakeHierarchy(std::size_t depth, std::size_t fanout,
                     std::size_t attrs_per_type) {
  Schema er("Hier", Metamodel::kEntityRelationship);
  std::size_t counter = 0;
  // Root.
  std::vector<model::Attribute> root_attrs = {
      {"Id", DataType::Int64(), false}};
  for (std::size_t a = 1; a < attrs_per_type; ++a) {
    root_attrs.push_back(
        {"T0A" + std::to_string(a), DataType::String(), false});
  }
  er.AddEntityType(model::EntityType{"T0", "", std::move(root_attrs), false});
  std::vector<std::string> frontier = {"T0"};
  ++counter;
  for (std::size_t level = 0; level < depth; ++level) {
    std::vector<std::string> next;
    for (const std::string& parent : frontier) {
      for (std::size_t f = 0; f < fanout; ++f) {
        std::string name = "T" + std::to_string(counter++);
        std::vector<model::Attribute> attrs;
        for (std::size_t a = 0; a < attrs_per_type; ++a) {
          attrs.push_back(
              {name + "A" + std::to_string(a), DataType::String(), false});
        }
        er.AddEntityType(
            model::EntityType{name, parent, std::move(attrs), false});
        next.push_back(name);
      }
    }
    frontier = std::move(next);
  }
  er.AddEntitySet(model::EntitySet{"Objects", "T0"});
  return er;
}

Instance MakeHierarchyInstance(const Schema& er, std::size_t rows_per_type,
                               Rng* rng) {
  Instance db = Instance::EmptyFor(er);
  const model::EntitySet* set = er.FindEntitySet("Objects");
  auto layout = instance::ComputeEntitySetLayout(er, *set);
  assert(layout.ok());
  std::int64_t id = 0;
  for (const std::string& type : er.SubtypeClosure(set->root_type)) {
    if (er.FindEntityType(type)->abstract) continue;
    auto attrs = er.AllAttributesOf(type);
    assert(attrs.ok());
    for (std::size_t i = 0; i < rows_per_type; ++i) {
      std::vector<Value> values;
      values.push_back(Value::Int64(id++));
      for (std::size_t a = 1; a < attrs->size(); ++a) {
        values.push_back(RandomValueOf((*attrs)[a].type, rng));
      }
      auto tuple = instance::MakeEntityTuple(*layout, er, type, values);
      assert(tuple.ok());
      db.InsertUnchecked("Objects", std::move(*tuple));
    }
  }
  return db;
}

EvolutionChain MakeEvolutionChain(std::size_t length, std::size_t attrs) {
  assert(attrs >= 2);
  EvolutionChain chain;

  auto make_schema = [&](std::size_t version) {
    Schema s("S" + std::to_string(version), Metamodel::kRelational);
    std::string suffix = "_v" + std::to_string(version);
    if (version == 0) {
      std::vector<model::Attribute> all = {{"Id", DataType::Int64(), false}};
      for (std::size_t a = 1; a < attrs; ++a) {
        all.push_back({"A" + std::to_string(a), DataType::String(), false});
      }
      s.AddRelation(model::Relation("Data" + suffix, std::move(all), {0}));
    } else {
      // Split: first half in Left, second half in Right (both keyed).
      std::size_t half = attrs / 2;
      std::vector<model::Attribute> left = {{"Id", DataType::Int64(), false}};
      std::vector<model::Attribute> right = {{"Id", DataType::Int64(), false}};
      for (std::size_t a = 1; a < attrs; ++a) {
        model::Attribute attr = {"A" + std::to_string(a), DataType::String(),
                                 false};
        if (a <= half) {
          left.push_back(attr);
        } else {
          right.push_back(attr);
        }
      }
      s.AddRelation(model::Relation("Left" + suffix, std::move(left), {0}));
      s.AddRelation(model::Relation("Right" + suffix, std::move(right), {0}));
    }
    return s;
  };

  chain.schemas.push_back(make_schema(0));
  for (std::size_t step = 0; step < length; ++step) {
    chain.schemas.push_back(make_schema(step + 1));
    const Schema& from = chain.schemas[step];
    const Schema& to = chain.schemas[step + 1];
    std::vector<Tgd> tgds;
    // Build per-attribute variable lists once.
    auto var_of = [&](const std::string& attr) {
      return Term::Var("v_" + attr);
    };
    auto atom_for = [&](const Schema& schema, const model::Relation& r) {
      Atom atom;
      atom.relation = r.name();
      (void)schema;
      for (const model::Attribute& a : r.attributes()) {
        atom.terms.push_back(var_of(a.name));
      }
      return atom;
    };
    if (step == 0) {
      // Data_v0 -> Left_v1 & Right_v1.
      Tgd tgd;
      tgd.body = {atom_for(from, from.relations()[0])};
      for (const model::Relation& r : to.relations()) {
        tgd.head.push_back(atom_for(to, r));
      }
      tgds.push_back(std::move(tgd));
    } else {
      // Rename step: Left_vi -> Left_v(i+1), Right_vi -> Right_v(i+1).
      for (std::size_t r = 0; r < from.relations().size(); ++r) {
        Tgd tgd;
        tgd.body = {atom_for(from, from.relations()[r])};
        tgd.head = {atom_for(to, to.relations()[r])};
        tgds.push_back(std::move(tgd));
      }
    }
    chain.steps.push_back(Mapping::FromTgds(
        "step" + std::to_string(step), from, to, std::move(tgds)));
  }
  return chain;
}

Instance MakeChainInstance(const EvolutionChain& chain, std::size_t rows,
                           Rng* rng) {
  return RandomInstance(chain.schemas.front(), rows, rng);
}

std::pair<Mapping, Mapping> MakeComposeBlowup(std::size_t producers,
                                              std::size_t atoms) {
  Schema s1("B1", Metamodel::kRelational);
  std::vector<Tgd> produce;
  for (std::size_t p = 0; p < producers; ++p) {
    std::string rel = "R" + std::to_string(p);
    s1.AddRelation(
        model::Relation(rel, {{"a", DataType::String(), false}}));
    Tgd tgd;
    tgd.body = {Atom{rel, {Term::Var("x")}}};
    tgd.head = {Atom{"T", {Term::Var("x")}}};
    produce.push_back(std::move(tgd));
  }
  Schema s2("B2", Metamodel::kRelational);
  s2.AddRelation(model::Relation("T", {{"a", DataType::String(), false}}));

  std::vector<model::Attribute> u_attrs;
  Tgd consume;
  Atom u_head;
  u_head.relation = "U";
  for (std::size_t a = 0; a < atoms; ++a) {
    std::string var = "x" + std::to_string(a);
    consume.body.push_back(Atom{"T", {Term::Var(var)}});
    u_head.terms.push_back(Term::Var(var));
    u_attrs.push_back(
        {"a" + std::to_string(a), DataType::String(), false});
  }
  consume.head = {std::move(u_head)};
  Schema s3("B3", Metamodel::kRelational);
  s3.AddRelation(model::Relation("U", std::move(u_attrs)));

  Mapping m12 = Mapping::FromTgds("blowup12", s1, s2, std::move(produce));
  Mapping m23 = Mapping::FromTgds("blowup23", s2, s3, {std::move(consume)});
  return {std::move(m12), std::move(m23)};
}

std::pair<Mapping, Mapping> MakeComposeBenign(std::size_t width) {
  Schema s1("C1", Metamodel::kRelational);
  Schema s2("C2", Metamodel::kRelational);
  Schema s3("C3", Metamodel::kRelational);
  std::vector<Tgd> first;
  std::vector<Tgd> second;
  for (std::size_t i = 0; i < width; ++i) {
    std::string a = "A" + std::to_string(i);
    std::string b = "B" + std::to_string(i);
    std::string c = "C" + std::to_string(i);
    s1.AddRelation(model::Relation(a, {{"x", DataType::String(), false}}));
    s2.AddRelation(model::Relation(b, {{"x", DataType::String(), false}}));
    s3.AddRelation(model::Relation(c, {{"x", DataType::String(), false}}));
    Tgd t1;
    t1.body = {Atom{a, {Term::Var("x")}}};
    t1.head = {Atom{b, {Term::Var("x")}}};
    first.push_back(std::move(t1));
    Tgd t2;
    t2.body = {Atom{b, {Term::Var("x")}}};
    t2.head = {Atom{c, {Term::Var("x")}}};
    second.push_back(std::move(t2));
  }
  Mapping m12 = Mapping::FromTgds("benign12", s1, s2, std::move(first));
  Mapping m23 = Mapping::FromTgds("benign23", s2, s3, std::move(second));
  return {std::move(m12), std::move(m23)};
}

namespace {

std::string Abbreviate(const std::string& name, Rng* rng) {
  std::vector<std::string> tokens = TokenizeIdentifier(name);
  std::string out;
  for (std::string& token : tokens) {
    if (token.size() > 4 && rng->Chance(0.5)) {
      token = token.substr(0, 4);  // "employee" -> "empl"
    }
    token[0] = static_cast<char>(std::toupper(
        static_cast<unsigned char>(token[0])));
    out += token;
  }
  return out.empty() ? name : out;
}

}  // namespace

PerturbedSchema PerturbNames(const Schema& original, Rng* rng) {
  PerturbedSchema out;
  out.schema = Schema(original.name() + "_p", original.metamodel());
  std::set<std::string> taken;
  for (const model::Relation& r : original.relations()) {
    std::string new_rel = Abbreviate(r.name(), rng);
    while (!taken.insert(new_rel).second) new_rel += "X";
    std::vector<model::Attribute> attrs;
    std::set<std::string> attr_taken;
    for (const model::Attribute& a : r.attributes()) {
      std::string new_attr = Abbreviate(a.name, rng);
      while (!attr_taken.insert(new_attr).second) new_attr += "X";
      attrs.push_back({new_attr, a.type, a.nullable});
      out.reference.push_back(
          {{r.name(), a.name}, {new_rel, new_attr}, 1.0});
    }
    out.schema.AddRelation(
        model::Relation(new_rel, std::move(attrs), r.primary_key()));
  }
  return out;
}

}  // namespace mm2::workload
