#ifndef MM2_WORKLOAD_GENERATORS_H_
#define MM2_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "instance/instance.h"
#include "logic/mapping.h"
#include "match/matcher.h"
#include "model/schema.h"

namespace mm2::workload {

// Deterministic xorshift RNG so every test/bench run is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed == 0 ? 0x9e3779b9ULL : seed) {}

  std::uint64_t Next();
  // Uniform in [0, n).
  std::size_t Uniform(std::size_t n);
  double UniformDouble();  // [0, 1)
  bool Chance(double p) { return UniformDouble() < p; }

 private:
  std::uint64_t state_;
};

// ---------------------------------------------------------------------------
// Relational workloads
// ---------------------------------------------------------------------------

// A random relational schema: `relations` relations with 2..max_attrs
// attributes each (first attribute is an int64 primary key).
model::Schema RandomRelationalSchema(const std::string& name,
                                     std::size_t relations,
                                     std::size_t max_attrs, Rng* rng);

// Fills every relation of `schema` with `rows` random tuples.
instance::Instance RandomInstance(const model::Schema& schema,
                                  std::size_t rows, Rng* rng);

// ---------------------------------------------------------------------------
// Snowflake pairs (experiment F4 / C3)
// ---------------------------------------------------------------------------

// A pair of snowflake schemas describing the same facts with renamed
// elements, plus the reference correspondences between them. The source
// root has `dims` dimension tables of `attrs_per_dim` attributes.
struct SnowflakePair {
  model::Schema source;
  model::Schema target;
  std::string source_root;
  std::string target_root;
  std::vector<match::Correspondence> correspondences;  // incl. root-root
};
SnowflakePair MakeSnowflakePair(std::size_t dims, std::size_t attrs_per_dim);

// Instance for the *source* side of a snowflake pair.
instance::Instance MakeSnowflakeInstance(const SnowflakePair& pair,
                                         std::size_t facts, Rng* rng);

// ---------------------------------------------------------------------------
// Inheritance hierarchies (experiments F2/F3/C4/C9)
// ---------------------------------------------------------------------------

// An ER schema whose single entity set "Objects" roots a hierarchy of the
// given depth and fanout; every type declares `attrs_per_type` attributes
// (the root's first is the Int64 key). depth=1, fanout=2 reproduces the
// Person/Employee/Customer shape of Fig. 2.
model::Schema MakeHierarchy(std::size_t depth, std::size_t fanout,
                            std::size_t attrs_per_type);

// `rows_per_type` entities of every concrete type.
instance::Instance MakeHierarchyInstance(const model::Schema& er,
                                         std::size_t rows_per_type, Rng* rng);

// ---------------------------------------------------------------------------
// Evolution chains (experiment F5)
// ---------------------------------------------------------------------------

// A chain S0 => S1 => ... => Sn of schema evolution steps. Each step
// renames the relation and re-partitions its non-key attributes into two
// relations joined on the key (the Fig. 6 "split Addresses" move), so every
// mapping is lossless and the chain composes to a first-order mapping.
struct EvolutionChain {
  std::vector<model::Schema> schemas;        // n+1 schemas
  std::vector<logic::Mapping> steps;         // n mappings S_i => S_{i+1}
};
EvolutionChain MakeEvolutionChain(std::size_t length, std::size_t attrs);

// Instance for schemas[0].
instance::Instance MakeChainInstance(const EvolutionChain& chain,
                                     std::size_t rows, Rng* rng);

// ---------------------------------------------------------------------------
// Composition blow-up family (experiment C1)
// ---------------------------------------------------------------------------

// The worst-case family for Compose: m12 has `producers` rules each
// producing mid-relation T from a distinct source relation; m23's single
// rule reads T `atoms` times. The composition enumerates
// producers^atoms combinations. Returns {m12, m23}.
std::pair<logic::Mapping, logic::Mapping> MakeComposeBlowup(
    std::size_t producers, std::size_t atoms);

// The benign family: a chain of single-rule copy mappings of the given
// width; composition stays linear.
std::pair<logic::Mapping, logic::Mapping> MakeComposeBenign(std::size_t width);

// ---------------------------------------------------------------------------
// Matcher workloads (experiment C3)
// ---------------------------------------------------------------------------

// A renamed copy of `schema` (abbreviations, case shuffling, synonyms)
// plus the reference alignment original-element ~ renamed-element.
struct PerturbedSchema {
  model::Schema schema;
  std::vector<match::Correspondence> reference;  // source = original
};
PerturbedSchema PerturbNames(const model::Schema& original, Rng* rng);

}  // namespace mm2::workload

#endif  // MM2_WORKLOAD_GENERATORS_H_
