#include "diff/diff.h"

#include <map>
#include <set>
#include <utility>

#include "chase/chase.h"
#include "logic/formula.h"

namespace mm2::diff {

using instance::Instance;
using instance::Tuple;
using instance::Value;
using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;

namespace {

// Computes, for each relation of mapping.source(), the set of attribute
// indices whose data the mapping carries: positions in body atoms holding a
// variable that reaches the head (or a constant filter, which pins the
// attribute's value and thus participates).
std::map<std::string, std::set<std::size_t>> ParticipatingAttributes(
    const Mapping& mapping) {
  std::map<std::string, std::set<std::size_t>> participating;
  for (const Tgd& tgd : mapping.tgds()) {
    std::set<std::string> head_vars = tgd.HeadVariables();
    for (const Atom& atom : tgd.body) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        const Term& t = atom.terms[i];
        bool carries = t.is_constant() ||
                       (t.is_variable() && head_vars.count(t.name()) > 0);
        if (carries) participating[atom.relation].insert(i);
      }
    }
  }
  return participating;
}

// Builds a sub-schema keeping `kept[r]` attribute indices per relation,
// plus the projection tgds source-relation -> sub-relation.
SubSchemaResult BuildSubSchema(
    const Mapping& mapping, const std::string& name_suffix,
    const std::map<std::string, std::set<std::size_t>>& kept) {
  SubSchemaResult result;
  result.schema =
      model::Schema(mapping.source().name() + name_suffix,
                    mapping.source().metamodel());
  std::vector<Tgd> tgds;
  for (const model::Relation& r : mapping.source().relations()) {
    auto it = kept.find(r.name());
    if (it == kept.end() || it->second.empty()) continue;
    std::vector<model::Attribute> attrs;
    std::vector<std::size_t> pk;
    for (std::size_t i : it->second) {
      if (r.IsKeyAttribute(i)) pk.push_back(attrs.size());
      attrs.push_back(r.attribute(i));
      result.kept_elements.push_back(r.name() + "." + r.attribute(i).name);
    }
    result.schema.AddRelation(model::Relation(r.name(), attrs, pk));

    Tgd projection;
    Atom body;
    body.relation = r.name();
    for (std::size_t i = 0; i < r.arity(); ++i) {
      body.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    Atom head;
    head.relation = r.name();
    for (std::size_t i : it->second) {
      head.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    projection.body = {std::move(body)};
    projection.head = {std::move(head)};
    tgds.push_back(std::move(projection));
  }
  result.mapping = Mapping::FromTgds(
      mapping.source().name() + name_suffix + "_proj", mapping.source(),
      result.schema, std::move(tgds));
  return result;
}

}  // namespace

Result<SubSchemaResult> Extract(const Mapping& mapping) {
  if (mapping.is_second_order()) {
    return Status::Unsupported("Extract expects a first-order mapping");
  }
  std::map<std::string, std::set<std::size_t>> participating =
      ParticipatingAttributes(mapping);
  return BuildSubSchema(mapping, "_extract", participating);
}

Result<SubSchemaResult> Diff(const Mapping& mapping) {
  if (mapping.is_second_order()) {
    return Status::Unsupported("Diff expects a first-order mapping");
  }
  std::map<std::string, std::set<std::size_t>> participating =
      ParticipatingAttributes(mapping);
  std::map<std::string, std::set<std::size_t>> complement;
  for (const model::Relation& r : mapping.source().relations()) {
    auto it = participating.find(r.name());
    std::set<std::size_t> missing;
    for (std::size_t i = 0; i < r.arity(); ++i) {
      if (it == participating.end() || it->second.count(i) == 0) {
        missing.insert(i);
      }
    }
    if (missing.empty()) continue;  // fully covered: nothing new here
    // Keep the key context so the complement can be rejoined with the
    // extract (the view-complement construction).
    for (std::size_t k : r.primary_key()) missing.insert(k);
    complement[r.name()] = std::move(missing);
  }
  return BuildSubSchema(mapping, "_diff", complement);
}

Result<Instance> Apply(const SubSchemaResult& sub, const Instance& source) {
  // The sub-schema reuses the original relation names (it is a sub-schema,
  // not a new vocabulary), so this is a direct projection rather than a
  // chase over a combined instance.
  Instance out;
  for (const model::Relation& r : sub.schema.relations()) {
    const model::Relation* orig =
        sub.mapping.source().FindRelation(r.name());
    if (orig == nullptr) {
      return Status::Internal("sub-schema relation '" + r.name() +
                              "' missing from original schema");
    }
    std::vector<std::size_t> positions;
    for (const model::Attribute& a : r.attributes()) {
      auto idx = orig->AttributeIndex(a.name);
      if (!idx.has_value()) {
        return Status::Internal("sub-schema attribute '" + r.name() + "." +
                                a.name + "' missing from original relation");
      }
      positions.push_back(*idx);
    }
    out.DeclareRelation(r.name(), r.arity());
    const instance::RelationInstance* rel = source.Find(r.name());
    if (rel == nullptr) continue;
    for (const Tuple& t : rel->tuples()) {
      Tuple projected;
      projected.reserve(positions.size());
      for (std::size_t p : positions) projected.push_back(t[p]);
      out.InsertUnchecked(r.name(), std::move(projected));
    }
  }
  return out;
}

Result<Instance> Reconstruct(const model::Schema& original,
                             const SubSchemaResult& extract,
                             const Instance& extract_data,
                             const SubSchemaResult& complement,
                             const Instance& diff_data) {
  Instance out;
  for (const model::Relation& orig : original.relations()) {
    const model::Relation* er = extract.schema.FindRelation(orig.name());
    const model::Relation* dr = complement.schema.FindRelation(orig.name());
    if (er == nullptr && dr == nullptr) continue;
    out.DeclareRelation(orig.name(), orig.arity());

    // Pass-through cases: the relation lives entirely on one side. The
    // side's attributes must cover the original relation for the
    // reconstruction to be faithful; otherwise missing columns are NULL.
    auto passthrough = [&](const model::Relation& side,
                           const Instance& data) {
      const instance::RelationInstance* rel = data.Find(orig.name());
      if (rel == nullptr) return;
      for (const Tuple& t : rel->tuples()) {
        Tuple row(orig.arity(), Value::Null());
        for (std::size_t j = 0; j < side.arity(); ++j) {
          auto idx = orig.AttributeIndex(side.attribute(j).name);
          if (idx.has_value()) row[*idx] = t[j];
        }
        out.InsertUnchecked(orig.name(), std::move(row));
      }
    };
    if (dr == nullptr) {
      passthrough(*er, extract_data);
      continue;
    }
    if (er == nullptr) {
      passthrough(*dr, diff_data);
      continue;
    }

    // Natural join on shared attribute names, then reorder into the
    // original attribute positions.
    std::vector<std::pair<std::size_t, std::size_t>> shared;  // (ei, dj)
    for (std::size_t j = 0; j < dr->arity(); ++j) {
      auto idx = er->AttributeIndex(dr->attribute(j).name);
      if (idx.has_value()) shared.push_back({*idx, j});
    }
    if (shared.empty()) {
      return Status::InvalidArgument(
          "cannot reconstruct '" + orig.name() +
          "': extract and diff share no attributes (key did not "
          "participate in the mapping)");
    }
    const instance::RelationInstance* left = extract_data.Find(orig.name());
    const instance::RelationInstance* right = diff_data.Find(orig.name());
    if (left == nullptr || right == nullptr) continue;
    std::map<Tuple, std::vector<const Tuple*>> index;
    for (const Tuple& t : right->tuples()) {
      Tuple key;
      for (const auto& [ei, dj] : shared) key.push_back(t[dj]);
      index[std::move(key)].push_back(&t);
    }
    for (const Tuple& t : left->tuples()) {
      Tuple key;
      for (const auto& [ei, dj] : shared) key.push_back(t[ei]);
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (const Tuple* rt : it->second) {
        Tuple row(orig.arity(), Value::Null());
        for (std::size_t j = 0; j < er->arity(); ++j) {
          auto idx = orig.AttributeIndex(er->attribute(j).name);
          if (idx.has_value()) row[*idx] = t[j];
        }
        for (std::size_t j = 0; j < dr->arity(); ++j) {
          auto idx = orig.AttributeIndex(dr->attribute(j).name);
          if (idx.has_value()) row[*idx] = (*rt)[j];
        }
        out.InsertUnchecked(orig.name(), std::move(row));
      }
    }
  }
  return out;
}

}  // namespace mm2::diff
