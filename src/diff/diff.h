#ifndef MM2_DIFF_DIFF_H_
#define MM2_DIFF_DIFF_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "instance/instance.h"
#include "logic/mapping.h"

namespace mm2::diff {

// Result of Extract or Diff: a sub-schema of the input mapping's *source*
// schema plus the projection mapping from the source onto it.
struct SubSchemaResult {
  model::Schema schema;
  logic::Mapping mapping;  // m.source() => schema (projection tgds)
  // Which elements of the input schema were kept, e.g. "R.a".
  std::vector<std::string> kept_elements;
};

// Extract(S, map): the maximal sub-schema of S = map.source() that
// participates in the mapping — every relation/attribute whose data flows
// into the mapping's head — along with the projection mapping onto it
// (paper Section 6.2). To diff a *target* schema S' against mapS-S', pass
// Invert(mapS-S') as the paper prescribes.
Result<SubSchemaResult> Extract(const logic::Mapping& mapping);

// Diff(S, map): the complement of Extract — the sub-schema covering the
// parts of S the mapping does not carry. Following the view-complement
// construction (Lechtenbörger–Vossen), each kept relation also retains its
// primary-key attributes so the complement can be rejoined with the
// extract; a relation the mapping covers completely is omitted.
Result<SubSchemaResult> Diff(const logic::Mapping& mapping);

// Applies the projection mapping of a SubSchemaResult to an instance of
// the original schema, producing the sub-schema's instance.
Result<instance::Instance> Apply(const SubSchemaResult& sub,
                                 const instance::Instance& source);

// Rejoins extract and diff instances (natural join per relation on shared
// attributes; relations present on only one side pass through), arranging
// columns back into `original`'s attribute order. When the primary key
// participates in the mapping, Reconstruct(Apply(extract), Apply(diff))
// equals the original instance — the complement property the tests verify.
Result<instance::Instance> Reconstruct(const model::Schema& original,
                                       const SubSchemaResult& extract,
                                       const instance::Instance& extract_data,
                                       const SubSchemaResult& complement,
                                       const instance::Instance& diff_data);

}  // namespace mm2::diff

#endif  // MM2_DIFF_DIFF_H_
