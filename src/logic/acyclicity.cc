#include "logic/acyclicity.h"

#include <map>
#include <set>
#include <utility>

#include "common/strings.h"

namespace mm2::logic {

namespace {

// A position in the dependency graph.
using Position = std::pair<std::string, std::size_t>;  // (relation, column)

std::string PositionName(const Position& p) {
  return p.first + "." + std::to_string(p.second);
}

struct Edge {
  Position to;
  bool special = false;
};

using Graph = std::map<Position, std::vector<Edge>>;

// Depth-first search for a cycle containing >= 1 special edge. Standard
// approach: for each special edge u -s-> v, check whether v reaches u.
bool Reaches(const Graph& graph, const Position& from, const Position& to,
             std::vector<Position>* path) {
  std::set<Position> visited;
  std::vector<Position> stack_path;
  bool found = false;
  auto dfs = [&](const Position& node, auto&& self) -> void {
    if (found || !visited.insert(node).second) return;
    stack_path.push_back(node);
    if (node == to) {
      *path = stack_path;
      found = true;
      return;
    }
    auto it = graph.find(node);
    if (it != graph.end()) {
      for (const Edge& e : it->second) {
        self(e.to, self);
        if (found) return;
      }
    }
    stack_path.pop_back();
  };
  dfs(from, dfs);
  return found;
}

}  // namespace

std::string AcyclicityReport::ToString() const {
  if (weakly_acyclic) return "weakly acyclic";
  return "NOT weakly acyclic; cycle: " + Join(cycle, " -> ");
}

AcyclicityReport CheckWeakAcyclicity(const std::vector<Tgd>& tgds) {
  Graph graph;
  std::vector<std::pair<Position, Position>> special_edges;

  for (const Tgd& tgd : tgds) {
    std::set<std::string> existentials = tgd.ExistentialVariables();
    // Body occurrences of each universal variable.
    std::map<std::string, std::vector<Position>> body_positions;
    for (const Atom& atom : tgd.body) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        if (atom.terms[i].is_variable()) {
          body_positions[atom.terms[i].name()].push_back(
              {atom.relation, i});
        }
      }
    }
    for (const Atom& atom : tgd.head) {
      // Head positions of existential variables in this atom set.
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        const Term& t = atom.terms[i];
        if (!t.is_variable()) continue;
        Position head_pos{atom.relation, i};
        if (existentials.count(t.name()) > 0) continue;
        // Regular edges: every body occurrence of this universal variable
        // points at its head position.
        auto it = body_positions.find(t.name());
        if (it == body_positions.end()) continue;
        for (const Position& from : it->second) {
          graph[from].push_back({head_pos, false});
        }
      }
    }
    // Special edges: from every body position of every universal variable
    // *used in the head* to every existential head position of the tgd.
    std::set<std::string> head_vars = tgd.HeadVariables();
    std::vector<Position> existential_positions;
    for (const Atom& atom : tgd.head) {
      for (std::size_t i = 0; i < atom.terms.size(); ++i) {
        const Term& t = atom.terms[i];
        if (t.is_variable() && existentials.count(t.name()) > 0) {
          existential_positions.push_back({atom.relation, i});
        }
      }
    }
    if (existential_positions.empty()) continue;
    for (const auto& [var, positions] : body_positions) {
      if (head_vars.count(var) == 0) continue;
      for (const Position& from : positions) {
        for (const Position& to : existential_positions) {
          graph[from].push_back({to, true});
          special_edges.push_back({from, to});
        }
      }
    }
  }

  // A cycle through a special edge u -s-> v exists iff v reaches u.
  for (const auto& [from, to] : special_edges) {
    std::vector<Position> path;
    if (Reaches(graph, to, from, &path)) {
      AcyclicityReport report;
      report.weakly_acyclic = false;
      report.cycle.push_back(PositionName(from) + " (special)");
      for (const Position& p : path) {
        report.cycle.push_back(PositionName(p));
      }
      return report;
    }
  }
  return AcyclicityReport{};
}

}  // namespace mm2::logic
