#include "logic/implication.h"

#include <map>
#include <set>

#include "chase/chase.h"

namespace mm2::logic {

using instance::Instance;
using instance::Tuple;
using instance::Value;

Result<bool> Implies(const Mapping& mapping, const Tgd& tgd) {
  if (mapping.is_second_order()) {
    return Status::Unsupported(
        "implication testing handles first-order mappings only");
  }
  MM2_RETURN_IF_ERROR(tgd.Validate(nullptr, nullptr));

  // Freeze the tgd body: each universal variable becomes a distinct
  // labeled null (the canonical database).
  std::map<std::string, Value> freeze;
  std::int64_t label = 0;
  for (const std::string& v : tgd.BodyVariables()) {
    freeze[v] = Value::LabeledNull(label++);
  }
  Instance canonical;
  for (const Atom& atom : tgd.body) {
    Tuple tuple;
    tuple.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      tuple.push_back(t.is_constant() ? t.value() : freeze.at(t.name()));
    }
    if (!canonical.HasRelation(atom.relation)) {
      canonical.DeclareRelation(atom.relation, tuple.size());
    }
    canonical.InsertUnchecked(atom.relation, std::move(tuple));
  }

  // Chase the canonical database with the mapping's constraints. Labels
  // for invented nulls must not collide with the frozen ones.
  chase::ChaseOptions options;
  options.first_null_label = label;
  MM2_ASSIGN_OR_RETURN(chase::ChaseResult chased,
                       chase::RunChase(mapping, canonical, options));

  // The tgd is implied iff the head matches in the chase result with the
  // universal variables pinned to their frozen nulls (existentials free);
  // pin by substituting the frozen values as constants into the head.
  std::set<std::string> body_vars = tgd.BodyVariables();
  std::vector<Atom> head;
  head.reserve(tgd.head.size());
  for (const Atom& atom : tgd.head) {
    Atom bound;
    bound.relation = atom.relation;
    for (const Term& t : atom.terms) {
      if (t.is_variable() && body_vars.count(t.name()) > 0) {
        bound.terms.push_back(Term::Const(freeze.at(t.name())));
      } else {
        bound.terms.push_back(t);
      }
    }
    head.push_back(std::move(bound));
  }
  return !chase::MatchAtoms(head, chased.target, /*limit=*/1).empty();
}

Result<bool> AreEquivalent(const Mapping& a, const Mapping& b) {
  if (a.is_second_order() || b.is_second_order()) {
    return Status::Unsupported(
        "equivalence testing handles first-order mappings only");
  }
  for (const Tgd& tgd : b.tgds()) {
    MM2_ASSIGN_OR_RETURN(bool implied, Implies(a, tgd));
    if (!implied) return false;
  }
  for (const Tgd& tgd : a.tgds()) {
    MM2_ASSIGN_OR_RETURN(bool implied, Implies(b, tgd));
    if (!implied) return false;
  }
  return true;
}

}  // namespace mm2::logic
