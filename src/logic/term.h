#ifndef MM2_LOGIC_TERM_H_
#define MM2_LOGIC_TERM_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "instance/value.h"

namespace mm2::logic {

// A first- or second-order term: a variable, a constant, or a function
// application f(t1,...,tn). Function terms are Skolem terms; they appear
// only in second-order tgds (paper Section 6.1, Fagin et al.'s
// "second-order dependencies to the rescue").
class Term {
 public:
  enum class Kind { kVariable, kConstant, kFunction };

  Term() : kind_(Kind::kVariable), name_("_") {}

  static Term Var(std::string name);
  static Term Const(instance::Value value);
  static Term Func(std::string name, std::vector<Term> args);

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_function() const { return kind_ == Kind::kFunction; }

  const std::string& name() const { return name_; }  // variable or function
  const instance::Value& value() const { return value_; }
  const std::vector<Term>& args() const { return args_; }

  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }
  bool operator<(const Term& other) const;

  // Collects variable names appearing in this term (depth-first).
  void CollectVariables(std::set<std::string>* out) const;
  // True if variable `name` occurs anywhere in this term.
  bool ContainsVariable(std::string_view name) const;

  // x, "abc", f(x, g(y)).
  std::string ToString() const;

 private:
  Kind kind_;
  std::string name_;        // variable or function name
  instance::Value value_;   // kConstant
  std::vector<Term> args_;  // kFunction
};

// A variable-to-term substitution with composition and application.
class Substitution {
 public:
  Substitution() = default;

  bool empty() const { return map_.empty(); }
  std::size_t size() const { return map_.size(); }

  // Binds `var` to `term` (overwrites an existing binding).
  void Bind(std::string var, Term term);
  const Term* Lookup(std::string_view var) const;
  bool IsBound(std::string_view var) const { return Lookup(var) != nullptr; }

  // Applies this substitution to a term, recursing through function args.
  // Application is idempotent-chased: if x -> y and y -> 3, Apply(x) = 3.
  Term Apply(const Term& term) const;

  const std::map<std::string, Term, std::less<>>& bindings() const {
    return map_;
  }

  std::string ToString() const;

 private:
  std::map<std::string, Term, std::less<>> map_;
};

// A simultaneous variable renaming (old name -> new name). Unlike
// Substitution::Apply, applying a renaming never chases through bindings,
// so it stays correct when an old name collides with a new one — the alpha-
// renaming case.
using VariableRenaming = std::map<std::string, std::string>;

// Applies `renaming` to every variable occurrence in `term`.
Term ApplyRenaming(const VariableRenaming& renaming, const Term& term);

// Syntactic unification with occurs check. On success extends `subst` to a
// most general unifier of the two terms (interpreted under the bindings
// already in `subst`). Returns false and may leave partial bindings on
// failure — pass a copy if rollback matters.
bool UnifyTerms(const Term& a, const Term& b, Substitution* subst);

// Generates fresh variable (or function) names: prefix0, prefix1, ...
class NameGenerator {
 public:
  explicit NameGenerator(std::string prefix) : prefix_(std::move(prefix)) {}

  std::string Next() { return prefix_ + std::to_string(counter_++); }
  // Fresh variable term.
  Term NextVar() { return Term::Var(Next()); }

 private:
  std::string prefix_;
  std::size_t counter_ = 0;
};

}  // namespace mm2::logic

#endif  // MM2_LOGIC_TERM_H_
