#include "logic/formula.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace mm2::logic {

namespace {

std::string AtomsToString(const std::vector<Atom>& atoms) {
  std::vector<std::string> parts;
  parts.reserve(atoms.size());
  for (const Atom& a : atoms) parts.push_back(a.ToString());
  return Join(parts, " & ");
}

Status ValidateAtoms(const std::vector<Atom>& atoms,
                     const model::Schema* schema, const char* side) {
  for (const Atom& atom : atoms) {
    if (atom.relation.empty()) {
      return Status::InvalidArgument(std::string(side) +
                                     " atom with empty relation name");
    }
    if (schema != nullptr) {
      const model::Relation* rel = schema->FindRelation(atom.relation);
      if (rel == nullptr) {
        return Status::NotFound(std::string(side) + " atom over '" +
                                atom.relation + "' missing from schema '" +
                                schema->name() + "'");
      }
      if (rel->arity() != atom.terms.size()) {
        return Status::InvalidArgument(
            "atom " + atom.ToString() + " has arity " +
            std::to_string(atom.terms.size()) + ", relation expects " +
            std::to_string(rel->arity()));
      }
    }
  }
  return Status::OK();
}

bool AtomsHaveFunctions(const std::vector<Atom>& atoms) {
  for (const Atom& atom : atoms) {
    for (const Term& t : atom.terms) {
      if (t.is_function()) return true;
    }
  }
  return false;
}

}  // namespace

void Atom::CollectVariables(std::set<std::string>* out) const {
  for (const Term& t : terms) t.CollectVariables(out);
}

Atom Atom::ApplySubstitution(const Substitution& subst) const {
  Atom out;
  out.relation = relation;
  out.terms.reserve(terms.size());
  for (const Term& t : terms) out.terms.push_back(subst.Apply(t));
  return out;
}

Atom Atom::Rename(const VariableRenaming& renaming) const {
  Atom out;
  out.relation = relation;
  out.terms.reserve(terms.size());
  for (const Term& t : terms) out.terms.push_back(ApplyRenaming(renaming, t));
  return out;
}

std::string Atom::ToString() const {
  std::string out = relation + "(";
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i].ToString();
  }
  out += ")";
  return out;
}

bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst) {
  if (a.relation != b.relation || a.terms.size() != b.terms.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.terms.size(); ++i) {
    if (!UnifyTerms(a.terms[i], b.terms[i], subst)) return false;
  }
  return true;
}

std::set<std::string> Tgd::BodyVariables() const {
  std::set<std::string> vars;
  for (const Atom& a : body) a.CollectVariables(&vars);
  return vars;
}

std::set<std::string> Tgd::HeadVariables() const {
  std::set<std::string> vars;
  for (const Atom& a : head) a.CollectVariables(&vars);
  return vars;
}

std::set<std::string> Tgd::ExistentialVariables() const {
  std::set<std::string> body_vars = BodyVariables();
  std::set<std::string> existential;
  for (const std::string& v : HeadVariables()) {
    if (body_vars.count(v) == 0) existential.insert(v);
  }
  return existential;
}

Tgd Tgd::ApplySubstitution(const Substitution& subst) const {
  Tgd out;
  out.body.reserve(body.size());
  out.head.reserve(head.size());
  for (const Atom& a : body) out.body.push_back(a.ApplySubstitution(subst));
  for (const Atom& a : head) out.head.push_back(a.ApplySubstitution(subst));
  return out;
}

Tgd Tgd::RenameVariables(NameGenerator* gen) const {
  std::set<std::string> vars = BodyVariables();
  for (const std::string& v : HeadVariables()) vars.insert(v);
  VariableRenaming renaming;
  for (const std::string& v : vars) renaming[v] = gen->Next();
  Tgd out;
  out.body.reserve(body.size());
  out.head.reserve(head.size());
  for (const Atom& a : body) out.body.push_back(a.Rename(renaming));
  for (const Atom& a : head) out.head.push_back(a.Rename(renaming));
  return out;
}

Status Tgd::Validate(const model::Schema* source,
                     const model::Schema* target) const {
  if (body.empty()) return Status::InvalidArgument("tgd with empty body");
  if (head.empty()) return Status::InvalidArgument("tgd with empty head");
  if (AtomsHaveFunctions(body) || AtomsHaveFunctions(head)) {
    return Status::InvalidArgument(
        "tgd contains function terms; use SoTgd for skolemized rules: " +
        ToString());
  }
  MM2_RETURN_IF_ERROR(ValidateAtoms(body, source, "body"));
  MM2_RETURN_IF_ERROR(ValidateAtoms(head, target, "head"));
  return Status::OK();
}

std::string Tgd::ToString() const {
  return AtomsToString(body) + " -> " + AtomsToString(head);
}

Status Egd::Validate(const model::Schema* schema) const {
  if (body.empty()) return Status::InvalidArgument("egd with empty body");
  MM2_RETURN_IF_ERROR(ValidateAtoms(body, schema, "body"));
  std::set<std::string> vars;
  for (const Atom& a : body) a.CollectVariables(&vars);
  if (vars.count(left) == 0 || vars.count(right) == 0) {
    return Status::InvalidArgument("egd equality over unbound variable: " +
                                   ToString());
  }
  return Status::OK();
}

std::string Egd::ToString() const {
  return AtomsToString(body) + " -> " + left + " = " + right;
}

std::set<std::string> SoTgdClause::BodyVariables() const {
  std::set<std::string> vars;
  for (const Atom& a : body) a.CollectVariables(&vars);
  return vars;
}

SoTgdClause SoTgdClause::ApplySubstitution(const Substitution& subst) const {
  SoTgdClause out;
  for (const Atom& a : body) out.body.push_back(a.ApplySubstitution(subst));
  for (const auto& [l, r] : equalities) {
    out.equalities.emplace_back(subst.Apply(l), subst.Apply(r));
  }
  for (const Atom& a : head) out.head.push_back(a.ApplySubstitution(subst));
  return out;
}

SoTgdClause SoTgdClause::Rename(const VariableRenaming& renaming) const {
  SoTgdClause out;
  for (const Atom& a : body) out.body.push_back(a.Rename(renaming));
  for (const auto& [l, r] : equalities) {
    out.equalities.emplace_back(ApplyRenaming(renaming, l),
                                ApplyRenaming(renaming, r));
  }
  for (const Atom& a : head) out.head.push_back(a.Rename(renaming));
  return out;
}

std::string SoTgdClause::ToString() const {
  std::string out = AtomsToString(body);
  for (const auto& [l, r] : equalities) {
    out += " & " + l.ToString() + " = " + r.ToString();
  }
  out += " -> " + AtomsToString(head);
  return out;
}

std::vector<Term> SoTgd::AllFunctionTerms() const {
  std::vector<Term> out;
  auto visit_term = [&](const Term& t, auto&& self) -> void {
    if (t.is_function()) {
      if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
      for (const Term& arg : t.args()) self(arg, self);
    }
  };
  for (const SoTgdClause& clause : clauses) {
    for (const Atom& a : clause.head) {
      for (const Term& t : a.terms) visit_term(t, visit_term);
    }
    for (const auto& [l, r] : clause.equalities) {
      visit_term(l, visit_term);
      visit_term(r, visit_term);
    }
  }
  return out;
}

std::string SoTgd::ToString() const {
  std::string out;
  if (!functions.empty()) {
    std::vector<std::string> fs(functions.begin(), functions.end());
    out += "exists " + Join(fs, ", ") + " . ";
  }
  std::vector<std::string> parts;
  parts.reserve(clauses.size());
  for (const SoTgdClause& c : clauses) parts.push_back("(" + c.ToString() + ")");
  out += Join(parts, " & ");
  return out;
}

SoTgdClause Skolemize(const Tgd& tgd, NameGenerator* gen,
                      std::set<std::string>* functions_out) {
  std::set<std::string> body_vars = tgd.BodyVariables();
  std::vector<Term> args;
  args.reserve(body_vars.size());
  for (const std::string& v : body_vars) args.push_back(Term::Var(v));

  Substitution subst;
  for (const std::string& existential : tgd.ExistentialVariables()) {
    std::string fname = gen->Next();
    if (functions_out != nullptr) functions_out->insert(fname);
    subst.Bind(existential, Term::Func(fname, args));
  }

  SoTgdClause clause;
  clause.body = tgd.body;
  for (const Atom& a : tgd.head) {
    clause.head.push_back(a.ApplySubstitution(subst));
  }
  return clause;
}

std::optional<std::vector<Tgd>> Deskolemize(const SoTgd& so) {
  // A function f is deskolemizable when: it never occurs nested or in an
  // equality, it occurs in exactly one clause, and within that clause all
  // its occurrences share one argument tuple made only of distinct
  // variables. Then f(args) can be re-read as one existential variable.
  struct FunctionUse {
    int clause = -1;
    std::vector<Term> args;
    bool bad = false;
  };
  std::map<std::string, FunctionUse> uses;

  auto note_term = [&](const Term& t, int clause_index, bool in_equality,
                       bool nested, auto&& self) -> void {
    if (!t.is_function()) return;
    FunctionUse& use = uses[t.name()];
    if (in_equality || nested) {
      use.bad = true;
    } else if (use.clause == -1) {
      use.clause = clause_index;
      use.args = t.args();
      for (const Term& arg : t.args()) {
        if (!arg.is_variable()) use.bad = true;
      }
      std::set<Term> distinct(t.args().begin(), t.args().end());
      if (distinct.size() != t.args().size()) use.bad = true;
    } else if (use.clause != clause_index || use.args != t.args()) {
      use.bad = true;
    }
    for (const Term& arg : t.args()) {
      self(arg, clause_index, in_equality, /*nested=*/true, self);
    }
  };

  for (std::size_t ci = 0; ci < so.clauses.size(); ++ci) {
    const SoTgdClause& clause = so.clauses[ci];
    for (const Atom& a : clause.head) {
      for (const Term& t : a.terms) {
        note_term(t, static_cast<int>(ci), false, false, note_term);
      }
    }
    for (const auto& [l, r] : clause.equalities) {
      note_term(l, static_cast<int>(ci), true, false, note_term);
      note_term(r, static_cast<int>(ci), true, false, note_term);
    }
    if (!clause.equalities.empty()) {
      // Equalities between non-function terms could be inlined, but the
      // composition algorithm only emits them for function terms; reject.
      return std::nullopt;
    }
  }
  for (const auto& [fname, use] : uses) {
    if (use.bad) return std::nullopt;
  }

  std::vector<Tgd> tgds;
  NameGenerator evar("_e");
  for (const SoTgdClause& clause : so.clauses) {
    Tgd tgd;
    tgd.body = clause.body;
    // Replace each function term with its existential variable.
    std::map<std::string, Term> replacement;
    auto rewrite = [&](const Term& t, auto&& self) -> Term {
      if (t.is_function()) {
        auto it = replacement.find(t.name());
        if (it == replacement.end()) {
          it = replacement.emplace(t.name(), evar.NextVar()).first;
        }
        return it->second;
      }
      if (t.is_variable() || t.is_constant()) return t;
      std::vector<Term> args;
      for (const Term& arg : t.args()) args.push_back(self(arg, self));
      return Term::Func(t.name(), std::move(args));
    };
    for (const Atom& a : clause.head) {
      Atom out;
      out.relation = a.relation;
      for (const Term& t : a.terms) out.terms.push_back(rewrite(t, rewrite));
      tgd.head.push_back(std::move(out));
    }
    tgds.push_back(std::move(tgd));
  }
  return tgds;
}

std::set<std::string> ConjunctiveQuery::HeadVariables() const {
  std::set<std::string> vars;
  head.CollectVariables(&vars);
  return vars;
}

Status ConjunctiveQuery::Validate() const {
  if (body.empty()) return Status::InvalidArgument("query with empty body");
  if (AtomsHaveFunctions(body) || AtomsHaveFunctions({head})) {
    return Status::InvalidArgument("query contains function terms");
  }
  std::set<std::string> body_vars;
  for (const Atom& a : body) a.CollectVariables(&body_vars);
  for (const std::string& v : HeadVariables()) {
    if (body_vars.count(v) == 0) {
      return Status::InvalidArgument("head variable '" + v +
                                     "' not bound in body: " + ToString());
    }
  }
  return Status::OK();
}

std::string ConjunctiveQuery::ToString() const {
  return head.ToString() + " :- " + AtomsToString(body);
}

}  // namespace mm2::logic
