#ifndef MM2_LOGIC_MAPPING_H_
#define MM2_LOGIC_MAPPING_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "logic/formula.h"
#include "model/schema.h"

namespace mm2::logic {

// A mapping between two schemas: a set of mapping constraints defining a
// subset of D_source x D_target (paper Section 2). The constraint language
// is s-t tgds (GLAV) when first-order expressible, escalating to one
// second-order tgd when not — exactly the closure story of Section 6.1.
//
// Target egds carry key constraints that data exchange must respect.
class Mapping {
 public:
  Mapping() = default;

  static Mapping FromTgds(std::string name, model::Schema source,
                          model::Schema target, std::vector<Tgd> tgds,
                          std::vector<Egd> target_egds = {});
  static Mapping FromSoTgd(std::string name, model::Schema source,
                           model::Schema target, SoTgd so_tgd,
                           std::vector<Egd> target_egds = {});

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const model::Schema& source() const { return source_; }
  const model::Schema& target() const { return target_; }

  bool is_second_order() const { return so_tgd_.has_value(); }
  // First-order constraints; empty when is_second_order().
  const std::vector<Tgd>& tgds() const { return tgds_; }
  const SoTgd& so_tgd() const { return *so_tgd_; }
  const std::vector<Egd>& target_egds() const { return target_egds_; }

  void AddTgd(Tgd tgd) { tgds_.push_back(std::move(tgd)); }
  void AddTargetEgd(Egd egd) { target_egds_.push_back(std::move(egd)); }

  // The second-order form: the SO-tgd itself, or the skolemization of the
  // tgds. Always available; used as composition input.
  SoTgd Skolemized() const;

  // Total number of constraint clauses (tgds or SO-clauses).
  std::size_t ClauseCount() const;

  // Structural checks: schemas valid, every constraint well-formed over
  // source/target vocabularies.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::string name_;
  model::Schema source_;
  model::Schema target_;
  std::vector<Tgd> tgds_;
  std::optional<SoTgd> so_tgd_;
  std::vector<Egd> target_egds_;
};

}  // namespace mm2::logic

#endif  // MM2_LOGIC_MAPPING_H_
