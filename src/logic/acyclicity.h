#ifndef MM2_LOGIC_ACYCLICITY_H_
#define MM2_LOGIC_ACYCLICITY_H_

#include <string>
#include <vector>

#include "logic/formula.h"

namespace mm2::logic {

// Weak acyclicity of a tgd set (Fagin–Kolaitis–Miller–Popa): the classical
// sufficient condition for chase termination that underpins Section 4's
// data-exchange story. Build the dependency graph over positions
// (relation, column):
//   - a *regular* edge (R,i) -> (S,j) when some tgd copies the variable at
//     body position (R,i) to head position (S,j);
//   - a *special* edge (R,i) -> (S,j) when the variable at body position
//     (R,i) occurs in a head atom that also has an existential variable at
//     position (S,j) — firing invents a value "downstream" of (R,i).
// The set is weakly acyclic iff no cycle passes through a special edge;
// then every chase sequence terminates in polynomially many steps.

struct AcyclicityReport {
  bool weakly_acyclic = true;
  // When not acyclic: one position cycle through a special edge, as
  // "R.2 -> S.1 ->* R.2" strings for diagnostics.
  std::vector<std::string> cycle;

  std::string ToString() const;
};

// Analyzes the tgd set. Egds never affect weak acyclicity and are not
// needed. Works on both s-t tgds (always acyclic: source and target
// vocabularies are disjoint, so no cycles at all) and intra-schema rule
// sets (where the check is substantive, e.g. ChaseInstance closures).
AcyclicityReport CheckWeakAcyclicity(const std::vector<Tgd>& tgds);

}  // namespace mm2::logic

#endif  // MM2_LOGIC_ACYCLICITY_H_
