#include "logic/mapping.h"

#include <utility>

namespace mm2::logic {

Mapping Mapping::FromTgds(std::string name, model::Schema source,
                          model::Schema target, std::vector<Tgd> tgds,
                          std::vector<Egd> target_egds) {
  Mapping m;
  m.name_ = std::move(name);
  m.source_ = std::move(source);
  m.target_ = std::move(target);
  m.tgds_ = std::move(tgds);
  m.target_egds_ = std::move(target_egds);
  return m;
}

Mapping Mapping::FromSoTgd(std::string name, model::Schema source,
                           model::Schema target, SoTgd so_tgd,
                           std::vector<Egd> target_egds) {
  Mapping m;
  m.name_ = std::move(name);
  m.source_ = std::move(source);
  m.target_ = std::move(target);
  m.so_tgd_ = std::move(so_tgd);
  m.target_egds_ = std::move(target_egds);
  return m;
}

SoTgd Mapping::Skolemized() const {
  if (so_tgd_.has_value()) return *so_tgd_;
  SoTgd so;
  NameGenerator fgen("_f_" + name_ + "_");
  for (const Tgd& tgd : tgds_) {
    so.clauses.push_back(Skolemize(tgd, &fgen, &so.functions));
  }
  return so;
}

std::size_t Mapping::ClauseCount() const {
  return so_tgd_.has_value() ? so_tgd_->clauses.size() : tgds_.size();
}

Status Mapping::Validate() const {
  MM2_RETURN_IF_ERROR(source_.Validate());
  MM2_RETURN_IF_ERROR(target_.Validate());
  for (const Tgd& tgd : tgds_) {
    // Atoms over entity sets (ER schemas) are not plain relations; validate
    // vocabularies only for relational/nested schemas.
    const model::Schema* src =
        source_.entity_sets().empty() ? &source_ : nullptr;
    const model::Schema* tgt =
        target_.entity_sets().empty() ? &target_ : nullptr;
    MM2_RETURN_IF_ERROR(tgd.Validate(src, tgt));
  }
  for (const Egd& egd : target_egds_) {
    const model::Schema* tgt =
        target_.entity_sets().empty() ? &target_ : nullptr;
    MM2_RETURN_IF_ERROR(egd.Validate(tgt));
  }
  return Status::OK();
}

std::string Mapping::ToString() const {
  std::string out = "mapping " + name_ + ": " + source_.name() + " => " +
                    target_.name() + " {\n";
  if (so_tgd_.has_value()) {
    out += "  " + so_tgd_->ToString() + "\n";
  } else {
    for (const Tgd& tgd : tgds_) out += "  " + tgd.ToString() + "\n";
  }
  for (const Egd& egd : target_egds_) {
    out += "  egd: " + egd.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace mm2::logic
