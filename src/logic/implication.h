#ifndef MM2_LOGIC_IMPLICATION_H_
#define MM2_LOGIC_IMPLICATION_H_

#include "common/result.h"
#include "logic/formula.h"
#include "logic/mapping.h"

namespace mm2::logic {

// Logical implication and equivalence of first-order mappings, by the
// classical chase test: Sigma implies a tgd  body -> head  iff chasing the
// frozen body (its variables as fresh labeled nulls, the canonical
// database) with Sigma yields an instance satisfying the head under the
// freezing assignment. This is what statements like "the composition of
// the update view with the query view must equal the identity" (Section 4)
// and "composed mapping equals the direct mapping" need to be checked
// mechanically.
//
// Sound and complete for weakly acyclic s-t tgd sets (where the chase
// terminates); callers get Unsupported for second-order mappings.

// Does `mapping`'s constraint set imply `tgd`?
Result<bool> Implies(const Mapping& mapping, const Tgd& tgd);

// Do the two mappings have the same instance-level semantics? Checked by
// mutual implication of their tgd sets. Schema names are not compared —
// only the constraint semantics.
Result<bool> AreEquivalent(const Mapping& a, const Mapping& b);

}  // namespace mm2::logic

#endif  // MM2_LOGIC_IMPLICATION_H_
