#include "logic/term.h"

#include <utility>

namespace mm2::logic {

Term Term::Var(std::string name) {
  Term t;
  t.kind_ = Kind::kVariable;
  t.name_ = std::move(name);
  return t;
}

Term Term::Const(instance::Value value) {
  Term t;
  t.kind_ = Kind::kConstant;
  t.name_.clear();
  t.value_ = std::move(value);
  return t;
}

Term Term::Func(std::string name, std::vector<Term> args) {
  Term t;
  t.kind_ = Kind::kFunction;
  t.name_ = std::move(name);
  t.args_ = std::move(args);
  return t;
}

bool Term::operator==(const Term& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kVariable:
      return name_ == other.name_;
    case Kind::kConstant:
      return value_ == other.value_;
    case Kind::kFunction:
      return name_ == other.name_ && args_ == other.args_;
  }
  return false;
}

bool Term::operator<(const Term& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case Kind::kVariable:
      return name_ < other.name_;
    case Kind::kConstant:
      return value_ < other.value_;
    case Kind::kFunction:
      if (name_ != other.name_) return name_ < other.name_;
      return args_ < other.args_;
  }
  return false;
}

void Term::CollectVariables(std::set<std::string>* out) const {
  switch (kind_) {
    case Kind::kVariable:
      out->insert(name_);
      break;
    case Kind::kConstant:
      break;
    case Kind::kFunction:
      for (const Term& arg : args_) arg.CollectVariables(out);
      break;
  }
}

bool Term::ContainsVariable(std::string_view name) const {
  switch (kind_) {
    case Kind::kVariable:
      return name_ == name;
    case Kind::kConstant:
      return false;
    case Kind::kFunction:
      for (const Term& arg : args_) {
        if (arg.ContainsVariable(name)) return true;
      }
      return false;
  }
  return false;
}

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVariable:
      return name_;
    case Kind::kConstant:
      return value_.ToString();
    case Kind::kFunction: {
      std::string out = name_ + "(";
      for (std::size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out += ", ";
        out += args_[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

void Substitution::Bind(std::string var, Term term) {
  map_.insert_or_assign(std::move(var), std::move(term));
}

const Term* Substitution::Lookup(std::string_view var) const {
  auto it = map_.find(var);
  return it == map_.end() ? nullptr : &it->second;
}

Term Substitution::Apply(const Term& term) const {
  switch (term.kind()) {
    case Term::Kind::kVariable: {
      const Term* bound = Lookup(term.name());
      if (bound == nullptr) return term;
      // Chase through chained bindings (x -> y, y -> 3). Bindings produced
      // by UnifyTerms are acyclic thanks to the occurs check.
      return Apply(*bound);
    }
    case Term::Kind::kConstant:
      return term;
    case Term::Kind::kFunction: {
      std::vector<Term> args;
      args.reserve(term.args().size());
      for (const Term& arg : term.args()) args.push_back(Apply(arg));
      return Term::Func(term.name(), std::move(args));
    }
  }
  return term;
}

std::string Substitution::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [var, term] : map_) {
    if (!first) out += ", ";
    first = false;
    out += var + " -> " + term.ToString();
  }
  out += "}";
  return out;
}

Term ApplyRenaming(const VariableRenaming& renaming, const Term& term) {
  switch (term.kind()) {
    case Term::Kind::kVariable: {
      auto it = renaming.find(term.name());
      return it == renaming.end() ? term : Term::Var(it->second);
    }
    case Term::Kind::kConstant:
      return term;
    case Term::Kind::kFunction: {
      std::vector<Term> args;
      args.reserve(term.args().size());
      for (const Term& arg : term.args()) {
        args.push_back(ApplyRenaming(renaming, arg));
      }
      return Term::Func(term.name(), std::move(args));
    }
  }
  return term;
}

bool UnifyTerms(const Term& a, const Term& b, Substitution* subst) {
  Term ra = subst->Apply(a);
  Term rb = subst->Apply(b);
  if (ra == rb) return true;
  if (ra.is_variable()) {
    if (rb.ContainsVariable(ra.name())) return false;  // occurs check
    subst->Bind(ra.name(), rb);
    return true;
  }
  if (rb.is_variable()) {
    if (ra.ContainsVariable(rb.name())) return false;
    subst->Bind(rb.name(), ra);
    return true;
  }
  if (ra.is_constant() || rb.is_constant()) {
    return false;  // distinct constants, or constant vs function
  }
  // Both functions.
  if (ra.name() != rb.name() || ra.args().size() != rb.args().size()) {
    return false;
  }
  for (std::size_t i = 0; i < ra.args().size(); ++i) {
    if (!UnifyTerms(ra.args()[i], rb.args()[i], subst)) return false;
  }
  return true;
}

}  // namespace mm2::logic
