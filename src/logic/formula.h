#ifndef MM2_LOGIC_FORMULA_H_
#define MM2_LOGIC_FORMULA_H_

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "logic/term.h"
#include "model/schema.h"

namespace mm2::logic {

// A relational atom R(t1,...,tn).
struct Atom {
  std::string relation;
  std::vector<Term> terms;

  bool operator==(const Atom&) const = default;

  void CollectVariables(std::set<std::string>* out) const;
  Atom ApplySubstitution(const Substitution& subst) const;
  // Simultaneous alpha-renaming (no binding chase).
  Atom Rename(const VariableRenaming& renaming) const;
  std::string ToString() const;
};

// Unifies two atoms (same relation, same arity, pairwise unifiable terms).
bool UnifyAtoms(const Atom& a, const Atom& b, Substitution* subst);

// A source-to-target tuple-generating dependency (paper Section 6.1):
//   forall x. body(x) -> exists y. head(x, y)
// Variables appearing only in the head are existentially quantified. This
// is the GLAV constraint class the paper adopts for engineered mappings.
struct Tgd {
  std::vector<Atom> body;
  std::vector<Atom> head;

  std::set<std::string> BodyVariables() const;
  std::set<std::string> HeadVariables() const;
  // Head-only variables (the existentials).
  std::set<std::string> ExistentialVariables() const;
  // True if every head variable also occurs in the body.
  bool IsFull() const { return ExistentialVariables().empty(); }

  Tgd ApplySubstitution(const Substitution& subst) const;
  // Renames every variable with fresh names from `gen` (alpha-renaming, so
  // rules can be unified without capture).
  Tgd RenameVariables(NameGenerator* gen) const;

  // Checks shape: nonempty body and head, no function terms (those belong
  // in SoTgd), and — when schemas are supplied — body atoms over `source`,
  // head atoms over `target`, with correct arities.
  Status Validate(const model::Schema* source,
                  const model::Schema* target) const;

  std::string ToString() const;
};

// An equality-generating dependency: forall x. body(x) -> left = right,
// where left/right are variables of the body. Encodes keys and functional
// dependencies on the target.
struct Egd {
  std::vector<Atom> body;
  std::string left;
  std::string right;

  Status Validate(const model::Schema* schema) const;
  std::string ToString() const;
};

// One implication of a second-order tgd. Terms in the head (and in body
// equalities) may mention the existential Skolem functions. Body equalities
// arise during composition when two rules force the same function value.
struct SoTgdClause {
  std::vector<Atom> body;
  std::vector<std::pair<Term, Term>> equalities;  // conjoined with body
  std::vector<Atom> head;

  std::set<std::string> BodyVariables() const;
  SoTgdClause ApplySubstitution(const Substitution& subst) const;
  SoTgdClause Rename(const VariableRenaming& renaming) const;
  std::string ToString() const;
};

// A second-order tgd: exists f1..fk . AND_i clause_i. SO-tgds are closed
// under composition, unlike s-t tgds (Fagin et al., cited in Section 6.1).
struct SoTgd {
  std::set<std::string> functions;
  std::vector<SoTgdClause> clauses;

  // Collects every distinct function term appearing anywhere.
  std::vector<Term> AllFunctionTerms() const;
  std::string ToString() const;
};

// Skolemizes an s-t tgd: each existential variable y becomes f_y(x1..xn)
// over the tgd's body variables (in sorted order). `gen` supplies unique
// function names. The result has no existential variables.
SoTgdClause Skolemize(const Tgd& tgd, NameGenerator* gen,
                      std::set<std::string>* functions_out);

// Attempts the reverse: turns a clause set back into s-t tgds when every
// function term can be re-read as an existential variable. Fails (returns
// nullopt) when a function appears in more than one clause with different
// argument tuples, in an equality, or nested — the cases where the
// composition is genuinely second-order.
std::optional<std::vector<Tgd>> Deskolemize(const SoTgd& so);

// A conjunctive query: head(x) :- body(x, y). The head relation is virtual.
struct ConjunctiveQuery {
  Atom head;
  std::vector<Atom> body;

  std::set<std::string> HeadVariables() const;
  Status Validate() const;  // head vars must appear in body; no functions
  std::string ToString() const;
};

}  // namespace mm2::logic

#endif  // MM2_LOGIC_FORMULA_H_
