#include "match/correspondence.h"

#include <map>
#include <set>

namespace mm2::match {

using algebra::Expr;
using algebra::ExprRef;
using logic::Atom;
using logic::Term;
using logic::Tgd;

std::string InterpretedConstraint::ToString() const {
  return source_expr->ToString() + " = " + target_expr->ToString();
}

namespace {

// A join path from the snowflake root to some relation: the FK edges, in
// order.
using FkPath = std::vector<const model::ForeignKey*>;

// BFS over foreign keys (from child to referenced parent, starting at the
// root and following edges outward) computing a path to every reachable
// relation.
std::map<std::string, FkPath> PathsFromRoot(const model::Schema& schema,
                                            const std::string& root) {
  std::map<std::string, FkPath> paths;
  paths[root] = {};
  std::vector<std::string> frontier = {root};
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& rel : frontier) {
      for (const model::ForeignKey* fk : schema.ForeignKeysFrom(rel)) {
        if (paths.count(fk->to_relation) > 0) continue;
        FkPath path = paths[rel];
        path.push_back(fk);
        paths[fk->to_relation] = std::move(path);
        next.push_back(fk->to_relation);
      }
    }
    frontier = std::move(next);
  }
  return paths;
}

// Variable names for the attributes of the relations along a path; FK
// columns share variables, implementing the join.
class PathVars {
 public:
  PathVars(const model::Schema& schema, const std::string& root,
           const FkPath& path, const std::string& prefix) {
    AddRelation(schema, root, prefix);
    for (const model::ForeignKey* fk : path) {
      AddRelation(schema, fk->to_relation, prefix);
      // Unify referencing and referenced columns.
      for (std::size_t i = 0; i < fk->from_attributes.size(); ++i) {
        vars_[{fk->to_relation, fk->to_attributes[i]}] =
            vars_[{fk->from_relation, fk->from_attributes[i]}];
      }
    }
  }

  const std::string& VarOf(const std::string& relation,
                           const std::string& attribute) const {
    return vars_.at({relation, attribute});
  }

  // Atoms for the root and each relation on the path, in order.
  std::vector<Atom> Atoms(const model::Schema& schema, const std::string& root,
                          const FkPath& path) const {
    std::vector<Atom> atoms;
    atoms.push_back(AtomFor(schema, root));
    for (const model::ForeignKey* fk : path) {
      atoms.push_back(AtomFor(schema, fk->to_relation));
    }
    return atoms;
  }

 private:
  void AddRelation(const model::Schema& schema, const std::string& relation,
                   const std::string& prefix) {
    if (added_.count(relation) > 0) return;
    added_.insert(relation);
    const model::Relation* rel = schema.FindRelation(relation);
    for (const model::Attribute& a : rel->attributes()) {
      vars_[{relation, a.name}] = prefix + relation + "_" + a.name;
    }
  }

  Atom AtomFor(const model::Schema& schema, const std::string& relation) const {
    Atom atom;
    atom.relation = relation;
    const model::Relation* rel = schema.FindRelation(relation);
    for (const model::Attribute& a : rel->attributes()) {
      atom.terms.push_back(Term::Var(VarOf(relation, a.name)));
    }
    return atom;
  }

  std::map<std::pair<std::string, std::string>, std::string> vars_;
  std::set<std::string> added_;
};

// Builds pi_{key[, attr]}(root JOIN path...) as algebra, renaming columns to
// "<rel>_<attr>" to keep join outputs collision-free. Output columns are
// "key" and (when attr given) "val".
ExprRef BuildPathExpr(const model::Schema& schema, const std::string& root,
                      const std::string& root_key, const FkPath& path,
                      const std::string& attr_relation,
                      const std::string& attribute) {
  auto scan_renamed = [&](const std::string& relation) {
    const model::Relation* rel = schema.FindRelation(relation);
    std::vector<algebra::NamedExpr> projections;
    for (const model::Attribute& a : rel->attributes()) {
      projections.push_back(
          {relation + "_" + a.name, algebra::Col(a.name)});
    }
    return Expr::Project(Expr::Scan(relation), std::move(projections));
  };
  ExprRef expr = scan_renamed(root);
  for (const model::ForeignKey* fk : path) {
    std::vector<std::pair<std::string, std::string>> keys;
    for (std::size_t i = 0; i < fk->from_attributes.size(); ++i) {
      keys.push_back({fk->from_relation + "_" + fk->from_attributes[i],
                      fk->to_relation + "_" + fk->to_attributes[i]});
    }
    expr = Expr::Join(expr, scan_renamed(fk->to_relation),
                      Expr::JoinKind::kInner, std::move(keys));
  }
  std::vector<algebra::NamedExpr> out;
  out.push_back({"key", algebra::Col(root + "_" + root_key)});
  if (!attribute.empty()) {
    out.push_back({"val", algebra::Col(attr_relation + "_" + attribute)});
  }
  return Expr::Distinct(Expr::Project(expr, std::move(out)));
}

// A tgd whose body is the source join path and whose head is the target
// join path, sharing the key variable and (optionally) the value variable.
Tgd BuildInclusionTgd(const model::Schema& from_schema,
                      const std::string& from_root,
                      const std::string& from_key, const FkPath& from_path,
                      const std::string& from_rel, const std::string& from_attr,
                      const model::Schema& to_schema,
                      const std::string& to_root, const std::string& to_key,
                      const FkPath& to_path, const std::string& to_rel,
                      const std::string& to_attr) {
  PathVars from_vars(from_schema, from_root, from_path, "s_");
  PathVars to_vars(to_schema, to_root, to_path, "t_");
  Tgd tgd;
  tgd.body = from_vars.Atoms(from_schema, from_root, from_path);
  tgd.head = to_vars.Atoms(to_schema, to_root, to_path);

  // Substitute the shared key/value variables into the head.
  logic::Substitution share;
  share.Bind(to_vars.VarOf(to_root, to_key),
             Term::Var(from_vars.VarOf(from_root, from_key)));
  if (!from_attr.empty()) {
    share.Bind(to_vars.VarOf(to_rel, to_attr),
               Term::Var(from_vars.VarOf(from_rel, from_attr)));
  }
  for (Atom& atom : tgd.head) {
    atom = atom.ApplySubstitution(share);
  }
  return tgd;
}

Status CheckSnowflakeRoot(const model::Schema& schema,
                          const std::string& root) {
  const model::Relation* rel = schema.FindRelation(root);
  if (rel == nullptr) {
    return Status::NotFound("root relation '" + root + "' not in schema '" +
                            schema.name() + "'");
  }
  if (rel->primary_key().size() != 1) {
    return Status::InvalidArgument(
        "snowflake root '" + root +
        "' must have a single-attribute primary key");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<InterpretedConstraint>> InterpretCorrespondences(
    const model::Schema& source, const std::string& source_root,
    const model::Schema& target, const std::string& target_root,
    const std::vector<Correspondence>& correspondences) {
  MM2_RETURN_IF_ERROR(CheckSnowflakeRoot(source, source_root));
  MM2_RETURN_IF_ERROR(CheckSnowflakeRoot(target, target_root));
  const model::Relation* src_root_rel = source.FindRelation(source_root);
  const model::Relation* tgt_root_rel = target.FindRelation(target_root);
  const std::string src_key =
      src_root_rel->attribute(src_root_rel->primary_key()[0]).name;
  const std::string tgt_key =
      tgt_root_rel->attribute(tgt_root_rel->primary_key()[0]).name;

  std::map<std::string, FkPath> src_paths = PathsFromRoot(source, source_root);
  std::map<std::string, FkPath> tgt_paths = PathsFromRoot(target, target_root);

  // Locate the root correspondence (Fig. 4's constraint 1).
  bool has_root_correspondence = false;
  for (const Correspondence& c : correspondences) {
    if (c.source == model::ElementRef{source_root, src_key} &&
        c.target == model::ElementRef{target_root, tgt_key}) {
      has_root_correspondence = true;
    }
  }
  if (!has_root_correspondence) {
    return Status::InvalidArgument(
        "correspondences must include the root-key correspondence " +
        source_root + "." + src_key + " ~ " + target_root + "." + tgt_key);
  }

  std::vector<InterpretedConstraint> constraints;
  for (const Correspondence& c : correspondences) {
    if (c.source.attribute.empty() || c.target.attribute.empty()) {
      return Status::InvalidArgument(
          "snowflake interpretation needs attribute-level correspondences, "
          "got " +
          c.ToString());
    }
    auto sp = src_paths.find(c.source.container);
    auto tp = tgt_paths.find(c.target.container);
    if (sp == src_paths.end()) {
      return Status::InvalidArgument("relation '" + c.source.container +
                                     "' is not reachable from root '" +
                                     source_root + "'");
    }
    if (tp == tgt_paths.end()) {
      return Status::InvalidArgument("relation '" + c.target.container +
                                     "' is not reachable from root '" +
                                     target_root + "'");
    }
    if (source.FindAttribute(c.source) == nullptr) {
      return Status::NotFound("no attribute " + c.source.ToString());
    }
    if (target.FindAttribute(c.target) == nullptr) {
      return Status::NotFound("no attribute " + c.target.ToString());
    }

    bool is_root_corr = c.source == model::ElementRef{source_root, src_key} &&
                        c.target == model::ElementRef{target_root, tgt_key};
    // The root correspondence yields the key-only constraint
    // pi_key(source) = pi_key(target); others add the value column.
    std::string src_attr = is_root_corr ? "" : c.source.attribute;
    std::string tgt_attr = is_root_corr ? "" : c.target.attribute;

    InterpretedConstraint constraint;
    constraint.correspondence = c;
    constraint.source_expr =
        BuildPathExpr(source, source_root, src_key, sp->second,
                      c.source.container, src_attr);
    constraint.target_expr =
        BuildPathExpr(target, target_root, tgt_key, tp->second,
                      c.target.container, tgt_attr);
    constraint.forward = BuildInclusionTgd(
        source, source_root, src_key, sp->second, c.source.container, src_attr,
        target, target_root, tgt_key, tp->second, c.target.container,
        tgt_attr);
    constraint.backward = BuildInclusionTgd(
        target, target_root, tgt_key, tp->second, c.target.container, tgt_attr,
        source, source_root, src_key, sp->second, c.source.container,
        src_attr);
    constraints.push_back(std::move(constraint));
  }
  return constraints;
}

Result<logic::Mapping> MappingFromConstraints(
    std::string name, const model::Schema& source,
    const model::Schema& target,
    const std::vector<InterpretedConstraint>& constraints) {
  std::vector<Tgd> tgds;
  tgds.reserve(constraints.size());
  for (const InterpretedConstraint& c : constraints) {
    tgds.push_back(c.forward);
  }
  logic::Mapping mapping = logic::Mapping::FromTgds(std::move(name), source,
                                                    target, std::move(tgds));
  MM2_RETURN_IF_ERROR(mapping.Validate());
  return mapping;
}

}  // namespace mm2::match
