#include "match/matcher.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace mm2::match {

std::string Correspondence::ToString() const {
  return source.ToString() + " ~ " + target.ToString() + " (" +
         std::to_string(score) + ")";
}

std::string MatchResult::ToString() const {
  std::string out;
  for (const Correspondence& c : best) out += c.ToString() + "\n";
  return out;
}

SchemaMatcher::SchemaMatcher(MatchOptions options)
    : options_(std::move(options)) {
  for (const std::vector<std::string>& group : options_.thesaurus) {
    if (group.empty()) continue;
    for (const std::string& word : group) {
      synonym_canon_[ToLower(word)] = ToLower(group.front());
    }
  }
}

std::string SchemaMatcher::CanonicalToken(const std::string& token) const {
  auto it = synonym_canon_.find(token);
  return it == synonym_canon_.end() ? token : it->second;
}

double SchemaMatcher::NameSimilarity(const std::string& a,
                                     const std::string& b) const {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  if (la == lb) return 1.0;
  return std::max(EditSimilarity(la, lb), TrigramSimilarity(la, lb));
}

double SchemaMatcher::TokenSimilarity(const std::string& a,
                                      const std::string& b) const {
  std::vector<std::string> ta = TokenizeIdentifier(a);
  std::vector<std::string> tb = TokenizeIdentifier(b);
  if (ta.empty() || tb.empty()) return 0.0;
  std::set<std::string> sa;
  std::set<std::string> sb;
  for (const std::string& t : ta) sa.insert(CanonicalToken(t));
  for (const std::string& t : tb) sb.insert(CanonicalToken(t));
  // Soft Jaccard: exact token matches count 1, near matches (high edit
  // similarity, catching abbreviations like "empl" ~ "employee") count by
  // their similarity.
  double overlap = 0.0;
  for (const std::string& t : sa) {
    double best = 0.0;
    for (const std::string& u : sb) {
      double sim = (t == u) ? 1.0 : EditSimilarity(t, u);
      // Abbreviation bonus: "empl" ~ "employee", "dept" ~ "department".
      if (sim < 0.9 && (IsAbbreviation(u, t) || IsAbbreviation(t, u))) {
        double shorter = static_cast<double>(std::min(t.size(), u.size()));
        double longer = static_cast<double>(std::max(t.size(), u.size()));
        sim = std::max(sim, 0.5 + 0.5 * shorter / longer);
      }
      best = std::max(best, sim);
    }
    if (best >= 0.5) overlap += best;
  }
  double denom = static_cast<double>(std::max(sa.size(), sb.size()));
  return overlap / denom;
}

double SchemaMatcher::TypeSimilarity(const model::Attribute* a,
                                     const model::Attribute* b) const {
  if (a == nullptr || b == nullptr) {
    // Container-level elements: neutral.
    return 0.5;
  }
  if (a->type->Equals(*b->type)) return 1.0;
  if (a->type->is_primitive() && b->type->is_primitive()) {
    auto numeric = [](model::PrimitiveType t) {
      return t == model::PrimitiveType::kInt64 ||
             t == model::PrimitiveType::kDouble;
    };
    if (numeric(a->type->primitive()) && numeric(b->type->primitive())) {
      return 0.8;
    }
    return 0.2;
  }
  return 0.3;
}

double SchemaMatcher::LexicalSimilarity(const model::Schema& source_schema,
                                        const model::ElementRef& source,
                                        const model::Schema& target_schema,
                                        const model::ElementRef& target) const {
  // Attribute elements only compare against attribute elements, containers
  // against containers.
  if (source.attribute.empty() != target.attribute.empty()) return 0.0;
  const std::string& sname =
      source.attribute.empty() ? source.container : source.attribute;
  const std::string& tname =
      target.attribute.empty() ? target.container : target.attribute;
  double name = NameSimilarity(sname, tname);
  double token = TokenSimilarity(sname, tname);
  double type = TypeSimilarity(source_schema.FindAttribute(source),
                               target_schema.FindAttribute(target));
  return options_.name_weight * name + options_.token_weight * token +
         options_.type_weight * type;
}

MatchResult SchemaMatcher::Match(const model::Schema& source,
                                 const model::Schema& target) const {
  return MatchImpl(source, nullptr, target, nullptr);
}

MatchResult SchemaMatcher::Match(const model::Schema& source,
                                 const instance::Instance& source_data,
                                 const model::Schema& target,
                                 const instance::Instance& target_data) const {
  return MatchImpl(source, &source_data, target, &target_data);
}

double SchemaMatcher::InstanceSimilarity(
    const model::Schema& source_schema, const instance::Instance& source_data,
    const model::ElementRef& source, const model::Schema& target_schema,
    const instance::Instance& target_data,
    const model::ElementRef& target) const {
  auto sample = [&](const model::Schema& schema,
                    const instance::Instance& data,
                    const model::ElementRef& ref,
                    std::set<instance::Value>* out) {
    const model::Relation* rel = schema.FindRelation(ref.container);
    if (rel == nullptr) return false;
    auto idx = rel->AttributeIndex(ref.attribute);
    if (!idx.has_value()) return false;
    const instance::RelationInstance* extension = data.Find(ref.container);
    if (extension == nullptr) return false;
    for (const instance::Tuple& t : extension->tuples()) {
      if (out->size() >= options_.instance_sample) break;
      if (t[*idx].is_constant()) out->insert(t[*idx]);
    }
    return true;
  };
  std::set<instance::Value> a;
  std::set<instance::Value> b;
  if (!sample(source_schema, source_data, source, &a) ||
      !sample(target_schema, target_data, target, &b) || a.empty() ||
      b.empty()) {
    return 0.0;
  }
  std::size_t both = 0;
  for (const instance::Value& v : a) both += b.count(v);
  return static_cast<double>(both) /
         static_cast<double>(a.size() + b.size() - both);
}

MatchResult SchemaMatcher::MatchImpl(
    const model::Schema& source, const instance::Instance* source_data,
    const model::Schema& target,
    const instance::Instance* target_data) const {
  std::vector<model::ElementRef> source_elems = source.AllElements();
  std::vector<model::ElementRef> target_elems = target.AllElements();

  // Similarity matrix: lexical seed, blended with instance evidence when
  // value samples are available on both sides.
  bool use_instances = source_data != nullptr && target_data != nullptr &&
                       options_.instance_weight > 0.0;
  std::vector<std::vector<double>> sim(
      source_elems.size(), std::vector<double>(target_elems.size(), 0.0));
  for (std::size_t i = 0; i < source_elems.size(); ++i) {
    for (std::size_t j = 0; j < target_elems.size(); ++j) {
      double lexical =
          LexicalSimilarity(source, source_elems[i], target, target_elems[j]);
      if (use_instances && !source_elems[i].attribute.empty() &&
          !target_elems[j].attribute.empty()) {
        double overlap = InstanceSimilarity(source, *source_data,
                                            source_elems[i], target,
                                            *target_data, target_elems[j]);
        lexical = (1.0 - options_.instance_weight) * lexical +
                  options_.instance_weight * overlap;
      }
      sim[i][j] = lexical;
    }
  }

  // Structural propagation (similarity-flooding flavor): an attribute
  // pair's score is boosted by its containers' score, and a container
  // pair's score by the average of its best-matching attribute pairs.
  auto index_of = [](const std::vector<model::ElementRef>& elems,
                     const model::ElementRef& ref) -> std::size_t {
    for (std::size_t i = 0; i < elems.size(); ++i) {
      if (elems[i] == ref) return i;
    }
    return static_cast<std::size_t>(-1);
  };
  for (std::size_t round = 0; round < options_.structural_rounds; ++round) {
    std::vector<std::vector<double>> next = sim;
    for (std::size_t i = 0; i < source_elems.size(); ++i) {
      for (std::size_t j = 0; j < target_elems.size(); ++j) {
        const model::ElementRef& s = source_elems[i];
        const model::ElementRef& t = target_elems[j];
        double neighbor = 0.0;
        if (!s.attribute.empty() && !t.attribute.empty()) {
          // Boost by container similarity.
          std::size_t ci = index_of(source_elems, {s.container, ""});
          std::size_t cj = index_of(target_elems, {t.container, ""});
          if (ci != static_cast<std::size_t>(-1) &&
              cj != static_cast<std::size_t>(-1)) {
            neighbor = sim[ci][cj];
          }
        } else if (s.attribute.empty() && t.attribute.empty()) {
          // Boost by average best attribute similarity.
          double total = 0.0;
          std::size_t count = 0;
          for (std::size_t i2 = 0; i2 < source_elems.size(); ++i2) {
            if (source_elems[i2].container != s.container ||
                source_elems[i2].attribute.empty()) {
              continue;
            }
            double best = 0.0;
            for (std::size_t j2 = 0; j2 < target_elems.size(); ++j2) {
              if (target_elems[j2].container != t.container ||
                  target_elems[j2].attribute.empty()) {
                continue;
              }
              best = std::max(best, sim[i2][j2]);
            }
            total += best;
            ++count;
          }
          if (count > 0) neighbor = total / static_cast<double>(count);
        }
        next[i][j] = (1.0 - options_.structural_alpha) * sim[i][j] +
                     options_.structural_alpha * neighbor;
      }
    }
    sim = std::move(next);
  }

  MatchResult result;
  for (std::size_t i = 0; i < source_elems.size(); ++i) {
    std::vector<Correspondence> row;
    for (std::size_t j = 0; j < target_elems.size(); ++j) {
      if (sim[i][j] >= options_.threshold) {
        row.push_back({source_elems[i], target_elems[j], sim[i][j]});
      }
    }
    std::stable_sort(row.begin(), row.end(),
                     [](const Correspondence& a, const Correspondence& b) {
                       return a.score > b.score;
                     });
    if (row.size() > options_.top_k) row.resize(options_.top_k);
    if (!row.empty()) {
      if (!options_.one_to_one) result.best.push_back(row.front());
      result.candidates[source_elems[i]] = std::move(row);
    }
  }
  if (options_.one_to_one) {
    // Greedy global assignment: best scores first, each side used once.
    std::vector<Correspondence> all;
    for (std::size_t i = 0; i < source_elems.size(); ++i) {
      for (std::size_t j = 0; j < target_elems.size(); ++j) {
        if (sim[i][j] >= options_.threshold) {
          all.push_back({source_elems[i], target_elems[j], sim[i][j]});
        }
      }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Correspondence& a, const Correspondence& b) {
                       return a.score > b.score;
                     });
    std::set<model::ElementRef> used_source;
    std::set<model::ElementRef> used_target;
    for (Correspondence& c : all) {
      if (used_source.count(c.source) > 0 || used_target.count(c.target) > 0) {
        continue;
      }
      used_source.insert(c.source);
      used_target.insert(c.target);
      result.best.push_back(std::move(c));
    }
    // Keep `best` ordered by source element for deterministic output.
    std::stable_sort(result.best.begin(), result.best.end(),
                     [](const Correspondence& a, const Correspondence& b) {
                       return a.source < b.source;
                     });
  }
  return result;
}

MatchQuality EvaluateMatch(const std::vector<Correspondence>& proposed,
                           const std::vector<Correspondence>& reference) {
  auto key = [](const Correspondence& c) {
    return std::make_pair(c.source, c.target);
  };
  std::set<std::pair<model::ElementRef, model::ElementRef>> ref;
  for (const Correspondence& c : reference) ref.insert(key(c));
  std::size_t hits = 0;
  for (const Correspondence& c : proposed) hits += ref.count(key(c));
  MatchQuality q;
  if (!proposed.empty()) {
    q.precision = static_cast<double>(hits) /
                  static_cast<double>(proposed.size());
  }
  if (!reference.empty()) {
    q.recall =
        static_cast<double>(hits) / static_cast<double>(reference.size());
  }
  if (q.precision + q.recall > 0.0) {
    q.f1 = 2.0 * q.precision * q.recall / (q.precision + q.recall);
  }
  return q;
}

double CandidateRecall(const MatchResult& result,
                       const std::vector<Correspondence>& reference) {
  if (reference.empty()) return 0.0;
  std::size_t hits = 0;
  for (const Correspondence& ref : reference) {
    auto it = result.candidates.find(ref.source);
    if (it == result.candidates.end()) continue;
    for (const Correspondence& c : it->second) {
      if (c.target == ref.target) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(reference.size());
}

}  // namespace mm2::match
