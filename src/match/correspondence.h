#ifndef MM2_MATCH_CORRESPONDENCE_H_
#define MM2_MATCH_CORRESPONDENCE_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/result.h"
#include "logic/formula.h"
#include "logic/mapping.h"
#include "match/matcher.h"
#include "model/schema.h"

namespace mm2::match {

// One correspondence interpreted as a mapping constraint: the equality of
// two project-join expressions, one over the source and one over the target
// (Fig. 4; Melnik et al.'s unambiguous interpretation for snowflake
// schemas). The equality is also rendered as a pair of inclusion tgds so
// the chase and Compose can consume it.
struct InterpretedConstraint {
  Correspondence correspondence;
  algebra::ExprRef source_expr;  // pi_{key,attr}(join path from source root)
  algebra::ExprRef target_expr;  // pi_{key,attr}(join path from target root)
  logic::Tgd forward;            // source expr subset-of target expr
  logic::Tgd backward;           // target expr subset-of source expr
  std::string ToString() const;
};

// Interprets attribute correspondences between two *snowflake* schemas as
// join-equality constraints. Preconditions (checked):
//  - `source_root` / `target_root` name relations with single-attribute
//    primary keys, and every other relation is reachable from the root via
//    foreign keys (child -> parent direction, i.e. root points outward);
//  - `correspondences` contains exactly one pair relating the two root
//    keys (the "root correspondence" of Fig. 4's constraint 1);
//  - every other correspondence relates one source attribute to one target
//    attribute.
// Each non-root correspondence (a_s in R_s, a_t in R_t) yields
//   pi_{rootkey, a_s}(root JOIN ... JOIN R_s)
//     = pi_{rootkey', a_t}(root' JOIN ... JOIN R_t).
Result<std::vector<InterpretedConstraint>> InterpretCorrespondences(
    const model::Schema& source, const std::string& source_root,
    const model::Schema& target, const std::string& target_root,
    const std::vector<Correspondence>& correspondences);

// Packages interpreted constraints as a tgd mapping source => target (the
// forward inclusions; the backward ones witness equality and are returned
// for completeness by InterpretCorrespondences).
Result<logic::Mapping> MappingFromConstraints(
    std::string name, const model::Schema& source,
    const model::Schema& target,
    const std::vector<InterpretedConstraint>& constraints);

}  // namespace mm2::match

#endif  // MM2_MATCH_CORRESPONDENCE_H_
