#ifndef MM2_MATCH_MATCHER_H_
#define MM2_MATCH_MATCHER_H_

#include <map>
#include <string>
#include <vector>

#include "instance/instance.h"
#include "model/schema.h"

namespace mm2::match {

// A correspondence: a pair of schema elements "believed to be related in
// some unspecified way" (paper Section 3.1) with a confidence score.
struct Correspondence {
  model::ElementRef source;
  model::ElementRef target;
  double score = 0.0;

  std::string ToString() const;
};

struct MatchOptions {
  // Minimum score for a correspondence to be reported at all.
  double threshold = 0.35;
  // How many candidates to keep per source element. The paper argues the
  // matcher's job for engineered mappings is to return *all viable
  // candidates*, not only the best one (Section 3.1.1), so this is the
  // primary knob.
  std::size_t top_k = 3;
  // Component weights for the lexical score.
  double name_weight = 0.45;
  double token_weight = 0.35;
  double type_weight = 0.20;
  // Rounds of structural propagation (similarity-flooding flavor): element
  // scores flow between attributes and their containers.
  std::size_t structural_rounds = 2;
  // Blend factor for propagated similarity per round.
  double structural_alpha = 0.3;
  // Synonym groups; identifiers tokenizing into the same group count as
  // equal tokens ("dept" ~ "department").
  std::vector<std::vector<std::string>> thesaurus;
  // Weight of instance evidence (attribute value overlap) when instances
  // are supplied to Match; the lexical score is scaled by (1 - this).
  // "Value distributions" are one of the classic matcher inputs the paper
  // lists in Section 3.1.1.
  double instance_weight = 0.35;
  // Cap on sampled values per attribute when computing overlap.
  std::size_t instance_sample = 256;
  // When true, `best` is a one-to-one assignment (greedy on global score
  // order) instead of best-per-source-element: no two source elements map
  // to the same target. Candidate lists are unaffected.
  bool one_to_one = false;
};

struct MatchResult {
  // Top-k candidates per source element, best first.
  std::map<model::ElementRef, std::vector<Correspondence>> candidates;
  // The best candidate per source element (score >= threshold), a
  // convenient starting point for the data architect.
  std::vector<Correspondence> best;

  std::string ToString() const;
};

// The Match operator: proposes correspondences between two schemas using
// lexical similarity (edit distance, trigrams, token overlap with thesaurus,
// type compatibility) refined by structural propagation between containers
// and their attributes.
class SchemaMatcher {
 public:
  explicit SchemaMatcher(MatchOptions options = {});

  MatchResult Match(const model::Schema& source,
                    const model::Schema& target) const;

  // Match with instance evidence: attribute pairs whose value sets overlap
  // (Jaccard over samples) score higher. Relational attributes only;
  // container elements and ER attributes fall back to lexical evidence.
  MatchResult Match(const model::Schema& source,
                    const instance::Instance& source_data,
                    const model::Schema& target,
                    const instance::Instance& target_data) const;

  // Value-overlap similarity of two relational attributes (exposed for
  // tests): Jaccard of up-to-`instance_sample` sampled values.
  double InstanceSimilarity(const model::Schema& source_schema,
                            const instance::Instance& source_data,
                            const model::ElementRef& source,
                            const model::Schema& target_schema,
                            const instance::Instance& target_data,
                            const model::ElementRef& target) const;

  // The lexical (pre-propagation) similarity of two elements; exposed for
  // tests and benchmarks.
  double LexicalSimilarity(const model::Schema& source_schema,
                           const model::ElementRef& source,
                           const model::Schema& target_schema,
                           const model::ElementRef& target) const;

 private:
  MatchResult MatchImpl(const model::Schema& source,
                        const instance::Instance* source_data,
                        const model::Schema& target,
                        const instance::Instance* target_data) const;
  double NameSimilarity(const std::string& a, const std::string& b) const;
  double TokenSimilarity(const std::string& a, const std::string& b) const;
  double TypeSimilarity(const model::Attribute* a,
                        const model::Attribute* b) const;
  std::string CanonicalToken(const std::string& token) const;

  MatchOptions options_;
  std::map<std::string, std::string> synonym_canon_;
};

// Scores `result.best` against a reference alignment: returns
// {precision, recall, f1}. Used by the matcher benchmarks.
struct MatchQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
MatchQuality EvaluateMatch(const std::vector<Correspondence>& proposed,
                           const std::vector<Correspondence>& reference);

// Recall of the reference pairs within the top-k candidate lists — the
// "all viable candidates" metric the paper advocates.
double CandidateRecall(const MatchResult& result,
                       const std::vector<Correspondence>& reference);

}  // namespace mm2::match

#endif  // MM2_MATCH_MATCHER_H_
