#include "merge/merge.h"

#include <map>
#include <set>
#include <utility>

namespace mm2::merge {

using logic::Atom;
using logic::Mapping;
using logic::Term;
using logic::Tgd;
using match::Correspondence;
using model::Attribute;
using model::ElementRef;
using model::Schema;

namespace {

// Where each original attribute landed in the merged schema.
struct Placement {
  std::string merged_container;
  std::map<std::string, std::size_t> left_attr_index;   // original name -> idx
  std::map<std::string, std::size_t> right_attr_index;  // original name -> idx
  std::size_t arity = 0;
};

// One merged container under construction.
struct Builder {
  std::string name;
  std::vector<Attribute> attributes;
  std::vector<std::size_t> primary_key;
  Placement placement;
};

std::string FreshName(const std::string& base, const std::string& suffix,
                      const std::set<std::string>& taken,
                      MergeStats* stats) {
  if (taken.count(base) == 0) return base;
  ++stats->name_collisions;
  std::string candidate = base + suffix;
  while (taken.count(candidate) > 0) candidate += suffix;
  return candidate;
}

// Projection tgd: merged(all) -> original(selected positions).
Tgd ProjectionTgd(const std::string& merged_name, std::size_t merged_arity,
                  const std::string& original_name,
                  const std::vector<std::size_t>& positions) {
  Tgd tgd;
  Atom body;
  body.relation = merged_name;
  for (std::size_t i = 0; i < merged_arity; ++i) {
    body.terms.push_back(Term::Var("x" + std::to_string(i)));
  }
  Atom head;
  head.relation = original_name;
  for (std::size_t p : positions) {
    head.terms.push_back(Term::Var("x" + std::to_string(p)));
  }
  tgd.body = {std::move(body)};
  tgd.head = {std::move(head)};
  return tgd;
}

}  // namespace

Result<MergeResult> Merge(const Schema& left, const Schema& right,
                          const std::vector<Correspondence>& corrs,
                          const MergeOptions& options) {
  MM2_RETURN_IF_ERROR(left.Validate());
  MM2_RETURN_IF_ERROR(right.Validate());

  MergeResult result;
  MergeStats& stats = result.stats;

  // 1. Container correspondences: explicit, plus those implied by
  // attribute-level correspondences. Must be one-to-one.
  std::map<std::string, std::string> right_to_left;
  std::map<std::string, std::string> left_to_right;
  auto relate = [&](const std::string& l, const std::string& r) -> Status {
    auto it = right_to_left.find(r);
    if (it != right_to_left.end() && it->second != l) {
      return Status::InvalidArgument("container '" + r +
                                     "' corresponds to both '" + it->second +
                                     "' and '" + l + "'");
    }
    auto jt = left_to_right.find(l);
    if (jt != left_to_right.end() && jt->second != r) {
      return Status::InvalidArgument("container '" + l +
                                     "' corresponds to both '" + jt->second +
                                     "' and '" + r + "'");
    }
    right_to_left[r] = l;
    left_to_right[l] = r;
    return Status::OK();
  };
  // Attribute correspondences per (left container, right container).
  std::map<std::pair<std::string, std::string>,
           std::map<std::string, std::string>>
      attr_corrs;  // right attr -> left attr
  for (const Correspondence& c : corrs) {
    MM2_RETURN_IF_ERROR(relate(c.source.container, c.target.container));
    if (!c.source.attribute.empty() && !c.target.attribute.empty()) {
      attr_corrs[{c.source.container, c.target.container}]
                [c.target.attribute] = c.source.attribute;
    } else if (c.source.attribute.empty() != c.target.attribute.empty()) {
      return Status::InvalidArgument(
          "correspondence mixes container and attribute: " + c.ToString());
    }
  }

  // 2. Build merged containers.
  std::set<std::string> taken;
  std::vector<Builder> builders;
  std::map<std::string, std::size_t> builder_of_left;
  std::map<std::string, std::size_t> builder_of_right;

  auto containers_of = [](const Schema& s) {
    std::vector<std::pair<std::string, const std::vector<Attribute>*>> out;
    for (const model::Relation& r : s.relations()) {
      out.push_back({r.name(), &r.attributes()});
    }
    for (const model::EntityType& t : s.entity_types()) {
      out.push_back({t.name, &t.attributes});
    }
    return out;
  };

  for (const auto& [lname, lattrs] : containers_of(left)) {
    Builder b;
    b.name = FreshName(lname, options.collision_suffix, taken, &stats);
    taken.insert(b.name);
    b.placement.merged_container = b.name;
    for (const Attribute& a : *lattrs) {
      b.placement.left_attr_index[a.name] = b.attributes.size();
      b.attributes.push_back(a);
    }
    if (const model::Relation* lr = left.FindRelation(lname)) {
      b.primary_key = lr->primary_key();
    }
    builder_of_left[lname] = builders.size();
    builders.push_back(std::move(b));
  }

  for (const auto& [rname, rattrs] : containers_of(right)) {
    auto corr = right_to_left.find(rname);
    if (corr != right_to_left.end()) {
      auto bit = builder_of_left.find(corr->second);
      if (bit == builder_of_left.end()) {
        return Status::NotFound("correspondence names unknown container '" +
                                corr->second + "'");
      }
      Builder& b = builders[bit->second];
      ++stats.containers_merged;
      const auto& amap = attr_corrs[{corr->second, rname}];
      std::set<std::string> attr_names;
      for (const Attribute& a : b.attributes) attr_names.insert(a.name);
      for (const Attribute& ra : *rattrs) {
        auto am = amap.find(ra.name);
        if (am != amap.end()) {
          auto li = b.placement.left_attr_index.find(am->second);
          if (li == b.placement.left_attr_index.end()) {
            return Status::NotFound("correspondence names unknown attribute '" +
                                    corr->second + "." + am->second + "'");
          }
          Attribute& merged_attr = b.attributes[li->second];
          if (!merged_attr.type->Equals(*ra.type)) {
            ++stats.type_conflicts;
            merged_attr.type = model::UnifyTypes(merged_attr.type, ra.type);
          }
          merged_attr.nullable = merged_attr.nullable || ra.nullable;
          b.placement.right_attr_index[ra.name] = li->second;
          ++stats.attributes_merged;
        } else {
          std::string name = ra.name;
          if (attr_names.count(name) > 0) {
            ++stats.name_collisions;
            name += options.collision_suffix;
          }
          attr_names.insert(name);
          b.placement.right_attr_index[ra.name] = b.attributes.size();
          Attribute copy = ra;
          copy.name = name;
          // Right-only attributes of a merged container are nullable in
          // the merged world: left-sourced instances lack them.
          copy.nullable = true;
          b.attributes.push_back(std::move(copy));
        }
      }
      builder_of_right[rname] = bit->second;
    } else {
      Builder b;
      b.name = FreshName(rname, options.collision_suffix, taken, &stats);
      taken.insert(b.name);
      b.placement.merged_container = b.name;
      for (const Attribute& a : *rattrs) {
        b.placement.right_attr_index[a.name] = b.attributes.size();
        b.attributes.push_back(a);
      }
      if (const model::Relation* rr = right.FindRelation(rname)) {
        b.primary_key = rr->primary_key();
      }
      builder_of_right[rname] = builders.size();
      builders.push_back(std::move(b));
    }
  }

  // 3. Emit the merged schema. Containers that were relations stay
  // relations; entity types stay entity types (parents carried from their
  // originating side, mapped through the merge).
  result.merged = Schema(options.merged_name, left.metamodel());
  auto merged_name_of = [&](const std::string& container,
                            bool is_left) -> std::string {
    const auto& index = is_left ? builder_of_left : builder_of_right;
    auto it = index.find(container);
    return it == index.end() ? container : builders[it->second].name;
  };
  std::set<std::size_t> emitted;
  for (const auto& [lname, lattrs] : containers_of(left)) {
    std::size_t bi = builder_of_left[lname];
    Builder& b = builders[bi];
    emitted.insert(bi);
    if (left.FindRelation(lname) != nullptr) {
      result.merged.AddRelation(
          model::Relation(b.name, b.attributes, b.primary_key));
    } else {
      const model::EntityType* lt = left.FindEntityType(lname);
      model::EntityType merged_type;
      merged_type.name = b.name;
      merged_type.parent =
          lt->parent.empty() ? "" : merged_name_of(lt->parent, true);
      merged_type.attributes = b.attributes;
      merged_type.abstract = lt->abstract;
      result.merged.AddEntityType(std::move(merged_type));
    }
  }
  for (const auto& [rname, rattrs] : containers_of(right)) {
    std::size_t bi = builder_of_right[rname];
    if (emitted.count(bi) > 0) continue;  // merged into a left container
    emitted.insert(bi);
    Builder& b = builders[bi];
    if (right.FindRelation(rname) != nullptr) {
      result.merged.AddRelation(
          model::Relation(b.name, b.attributes, b.primary_key));
    } else {
      const model::EntityType* rt = right.FindEntityType(rname);
      model::EntityType merged_type;
      merged_type.name = b.name;
      merged_type.parent =
          rt->parent.empty() ? "" : merged_name_of(rt->parent, false);
      merged_type.attributes = b.attributes;
      merged_type.abstract = rt->abstract;
      result.merged.AddEntityType(std::move(merged_type));
    }
  }
  for (const model::EntitySet& s : left.entity_sets()) {
    result.merged.AddEntitySet(
        model::EntitySet{s.name, merged_name_of(s.root_type, true)});
  }
  for (const model::EntitySet& s : right.entity_sets()) {
    if (result.merged.FindEntitySet(s.name) != nullptr) continue;
    result.merged.AddEntitySet(
        model::EntitySet{s.name, merged_name_of(s.root_type, false)});
  }
  MM2_RETURN_IF_ERROR(result.merged.Validate());

  // 4. Projection mappings merged => left and merged => right.
  std::vector<Tgd> to_left_tgds;
  std::vector<Tgd> to_right_tgds;
  for (const auto& [lname, lattrs] : containers_of(left)) {
    const Builder& b = builders[builder_of_left[lname]];
    std::vector<std::size_t> positions;
    for (const Attribute& a : *lattrs) {
      positions.push_back(b.placement.left_attr_index.at(a.name));
    }
    to_left_tgds.push_back(
        ProjectionTgd(b.name, b.attributes.size(), lname, positions));
  }
  for (const auto& [rname, rattrs] : containers_of(right)) {
    const Builder& b = builders[builder_of_right[rname]];
    std::vector<std::size_t> positions;
    for (const Attribute& a : *rattrs) {
      positions.push_back(b.placement.right_attr_index.at(a.name));
    }
    to_right_tgds.push_back(
        ProjectionTgd(b.name, b.attributes.size(), rname, positions));
  }
  result.to_left = Mapping::FromTgds(options.merged_name + "_to_" + left.name(),
                                     result.merged, left,
                                     std::move(to_left_tgds));
  result.to_right = Mapping::FromTgds(
      options.merged_name + "_to_" + right.name(), result.merged, right,
      std::move(to_right_tgds));
  return result;
}

}  // namespace mm2::merge
