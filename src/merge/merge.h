#ifndef MM2_MERGE_MERGE_H_
#define MM2_MERGE_MERGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "logic/mapping.h"
#include "match/matcher.h"
#include "model/schema.h"

namespace mm2::merge {

struct MergeOptions {
  // Name of the merged schema.
  std::string merged_name = "merged";
  // Suffix appended to right-side containers whose names collide with an
  // unrelated left-side container.
  std::string collision_suffix = "_2";
};

struct MergeStats {
  std::size_t containers_merged = 0;     // correspondence-driven unifications
  std::size_t attributes_merged = 0;
  std::size_t type_conflicts = 0;        // resolved via UnifyTypes
  std::size_t name_collisions = 0;       // renamed with collision_suffix
};

// Result of Merge: the merged schema G and the two projection mappings
// G => A and G => B the paper's signature requires (Section 6.3).
struct MergeResult {
  model::Schema merged;
  logic::Mapping to_left;
  logic::Mapping to_right;
  MergeStats stats;
};

// The Merge operator, following Pottinger–Bernstein "Merging Models Based
// on Given Correspondences": containers related by a (container-level or
// implied attribute-level) correspondence collapse into one merged
// container carrying the union of their attributes; corresponding
// attributes merge with type conflicts resolved by UnifyTypes (numeric
// promotion, else string); everything else is copied, with name collisions
// between unrelated containers resolved by suffixing. The left schema is
// the "preferred model": merged elements keep its names.
//
// Supports relational and nested schemas (relations); ER merging reuses
// the same machinery over entity types with parent pointers preserved from
// the preferred side.
Result<MergeResult> Merge(const model::Schema& left,
                          const model::Schema& right,
                          const std::vector<match::Correspondence>& corrs,
                          const MergeOptions& options = {});

}  // namespace mm2::merge

#endif  // MM2_MERGE_MERGE_H_
