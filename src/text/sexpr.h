#ifndef MM2_TEXT_SEXPR_H_
#define MM2_TEXT_SEXPR_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "instance/instance.h"
#include "logic/mapping.h"
#include "model/schema.h"

namespace mm2::text {

// A small S-expression serialization for schemas and instances, used by the
// mm2_shell example and golden tests. It is intentionally not a SQL/XSD
// parser (out of scope per DESIGN.md); it is a faithful round-trippable
// rendering of the builder API.
//
// Schema syntax:
//   (schema NAME METAMODEL
//     (relation R (attr A TYPE [key] [nullable]) ...)
//     (fk FROM (A ...) TO (B ...))
//     (entity T [(parent P)] [abstract] (attr A TYPE) ...)
//     (entityset S ROOT))
// METAMODEL is one of: relational, er, nested, oo.
// TYPE is one of: int64, double, string, bool, date (nested struct and
// collection types are not expressible in text).
//
// Instance syntax:
//   (instance
//     (R (v1 v2 ...) (v1 v2 ...))
//     ...)
// Values: 42 -> int64; 4.5 -> double; "s" -> string; #t/#f -> bool;
// null -> NULL; N7 -> labeled null 7; d:123 -> date.

// Mapping syntax (first-order mappings only; schemas are embedded):
//   (mapping NAME
//     (source (schema ...))
//     (target (schema ...))
//     (tgd (body (R x y) (S y z)) (head (T x z)))
//     (egd (body (T x a) (T x b)) (eq a b)))
// Atom terms follow the query syntax of query.h: bare identifiers are
// variables, literals are constants.

// Rendering.
std::string SchemaToText(const model::Schema& schema);
std::string InstanceToText(const instance::Instance& database);
std::string MappingToText(const logic::Mapping& mapping);

// Parsing. Errors carry a character offset.
Result<model::Schema> ParseSchema(std::string_view text);
Result<instance::Instance> ParseInstance(std::string_view text);
Result<logic::Mapping> ParseMapping(std::string_view text);

}  // namespace mm2::text

#endif  // MM2_TEXT_SEXPR_H_
