#ifndef MM2_TEXT_QUERY_H_
#define MM2_TEXT_QUERY_H_

#include <string_view>

#include "common/result.h"
#include "logic/formula.h"

namespace mm2::text {

// Parses a conjunctive query in Datalog syntax:
//
//   Q(x, y) :- Listing(s, x, "CS"), Person(s, y)
//
// Terms: bare identifiers are variables; quoted strings, integers,
// doubles, #t/#f and null are constants. The head relation name is
// arbitrary (it names the answer).
Result<logic::ConjunctiveQuery> ParseQuery(std::string_view text);

// Renders a query back to the same syntax (modulo whitespace).
std::string QueryToText(const logic::ConjunctiveQuery& query);

}  // namespace mm2::text

#endif  // MM2_TEXT_QUERY_H_
