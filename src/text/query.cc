#include "text/query.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <vector>

#include "instance/value.h"

namespace mm2::text {

using instance::Value;
using logic::Atom;
using logic::ConjunctiveQuery;
using logic::Term;

namespace {

class QueryParser {
 public:
  explicit QueryParser(std::string_view text) : text_(text) {}

  Result<ConjunctiveQuery> Parse() {
    ConjunctiveQuery query;
    MM2_ASSIGN_OR_RETURN(query.head, ParseAtom());
    SkipSpace();
    if (!Consume(":-")) {
      return Error("expected ':-' after the head atom");
    }
    while (true) {
      MM2_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      query.body.push_back(std::move(atom));
      SkipSpace();
      if (!Consume(",")) break;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing input after query");
    }
    MM2_RETURN_IF_ERROR(query.Validate());
    return query;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Result<std::string> ParseIdentifier() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '$')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected an identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Atom> ParseAtom() {
    Atom atom;
    MM2_ASSIGN_OR_RETURN(atom.relation, ParseIdentifier());
    if (!Consume("(")) return Error("expected '(' after relation name");
    SkipSpace();
    if (Consume(")")) return atom;  // nullary atoms are legal syntax
    while (true) {
      MM2_ASSIGN_OR_RETURN(Term term, ParseTerm());
      atom.terms.push_back(std::move(term));
      if (Consume(")")) return atom;
      if (!Consume(",")) return Error("expected ',' or ')' in atom");
    }
  }

  Result<Term> ParseTerm() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of query");
    char c = text_[pos_];
    if (c == '"') {
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        s += text_[pos_++];
      }
      if (pos_ >= text_.size()) return Error("unterminated string");
      ++pos_;
      return Term::Const(Value::String(std::move(s)));
    }
    if (c == '#') {
      if (Consume("#t")) return Term::Const(Value::Bool(true));
      if (Consume("#f")) return Term::Const(Value::Bool(false));
      return Error("expected #t or #f");
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+') {
      std::size_t start = pos_;
      if (c == '-' || c == '+') ++pos_;
      bool floating = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E')) {
        if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
          floating = true;
        }
        ++pos_;
      }
      std::string token(text_.substr(start, pos_ - start));
      if (floating) {
        char* end = nullptr;
        double d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
          return Error("unparsable number '" + token + "'");
        }
        return Term::Const(Value::Double(d));
      }
      std::string_view digits = token;
      if (!digits.empty() && digits[0] == '+') digits.remove_prefix(1);
      std::int64_t i = 0;
      auto [ptr, ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(), i);
      if (ec != std::errc() || ptr != digits.data() + digits.size()) {
        return Error("unparsable integer '" + token + "'");
      }
      return Term::Const(Value::Int64(i));
    }
    MM2_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    if (name == "null") return Term::Const(Value::Null());
    return Term::Var(std::move(name));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<ConjunctiveQuery> ParseQuery(std::string_view text) {
  return QueryParser(text).Parse();
}

std::string QueryToText(const ConjunctiveQuery& query) {
  std::string out = query.head.ToString() + " :- ";
  for (std::size_t i = 0; i < query.body.size(); ++i) {
    if (i > 0) out += ", ";
    out += query.body[i].ToString();
  }
  return out;
}

}  // namespace mm2::text
