#include "text/sexpr.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/strings.h" 

namespace mm2::text {

using instance::Instance;
using instance::Tuple;
using instance::Value;
using model::DataType;
using model::DataTypeRef;
using model::Metamodel;
using model::Schema;

namespace {

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string TypeName(const DataTypeRef& type) {
  if (!type->is_primitive()) return "string";  // nested types degrade
  return model::PrimitiveTypeToString(type->primitive());
}

const char* MetamodelToken(Metamodel m) {
  switch (m) {
    case Metamodel::kRelational:
      return "relational";
    case Metamodel::kEntityRelationship:
      return "er";
    case Metamodel::kNested:
      return "nested";
    case Metamodel::kObjectOriented:
      return "oo";
  }
  return "relational";
}

std::string QuoteString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string ValueToken(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      return "null";
    case Value::Kind::kInt64:
      return std::to_string(v.int64());
    case Value::Kind::kDouble: {
      // %.17g round-trips every IEEE double exactly.
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.17g", v.dbl());
      std::string s = buffer;
      // Ensure the token re-parses as a double, not an int64.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find('E') == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Value::Kind::kString:
      return QuoteString(v.str());
    case Value::Kind::kBool:
      return v.boolean() ? "#t" : "#f";
    case Value::Kind::kDate:
      return "d:" + std::to_string(v.date());
    case Value::Kind::kLabeledNull:
      return "N" + std::to_string(v.label());
  }
  return "null";
}

}  // namespace

std::string SchemaToText(const Schema& schema) {
  std::string out = "(schema " + schema.name() + " " +
                    MetamodelToken(schema.metamodel()) + "\n";
  for (const model::Relation& r : schema.relations()) {
    out += "  (relation " + r.name();
    for (std::size_t i = 0; i < r.arity(); ++i) {
      const model::Attribute& a = r.attribute(i);
      out += " (attr " + a.name + " " + TypeName(a.type);
      if (r.IsKeyAttribute(i)) out += " key";
      if (a.nullable) out += " nullable";
      out += ")";
    }
    out += ")\n";
  }
  for (const model::ForeignKey& fk : schema.foreign_keys()) {
    out += "  (fk " + fk.from_relation + " (";
    out += Join(fk.from_attributes, " ");
    out += ") " + fk.to_relation + " (";
    out += Join(fk.to_attributes, " ");
    out += "))\n";
  }
  for (const model::EntityType& t : schema.entity_types()) {
    out += "  (entity " + t.name;
    if (!t.parent.empty()) out += " (parent " + t.parent + ")";
    if (t.abstract) out += " abstract";
    for (const model::Attribute& a : t.attributes) {
      out += " (attr " + a.name + " " + TypeName(a.type) + ")";
    }
    out += ")\n";
  }
  for (const model::EntitySet& s : schema.entity_sets()) {
    out += "  (entityset " + s.name + " " + s.root_type + ")\n";
  }
  out += ")\n";
  return out;
}

std::string InstanceToText(const Instance& database) {
  std::string out = "(instance\n";
  for (const auto& [name, rel] : database.relations()) {
    out += "  (" + name;
    for (const Tuple& t : rel.tuples()) {
      out += " (";
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out += " ";
        out += ValueToken(t[i]);
      }
      out += ")";
    }
    out += ")\n";
  }
  out += ")\n";
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

// A parsed S-expression node: an atom token or a list.
struct Node {
  bool is_atom = false;
  std::string atom;
  std::vector<Node> items;
  std::size_t offset = 0;  // for error messages
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Node> ParseOne() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    if (text_[pos_] == '(') {
      Node list;
      list.offset = pos_;
      ++pos_;
      while (true) {
        SkipSpace();
        if (pos_ >= text_.size()) return Error("missing ')'");
        if (text_[pos_] == ')') {
          ++pos_;
          return list;
        }
        MM2_ASSIGN_OR_RETURN(Node child, ParseOne());
        list.items.push_back(std::move(child));
      }
    }
    if (text_[pos_] == ')') return Error("unexpected ')'");
    Node atom;
    atom.is_atom = true;
    atom.offset = pos_;
    if (text_[pos_] == '"') {
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        s += text_[pos_++];
      }
      if (pos_ >= text_.size()) return Error("unterminated string");
      ++pos_;
      atom.atom = "\"" + s;  // leading quote marks string atoms
      return atom;
    }
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != '(' && text_[pos_] != ')') {
      atom.atom += text_[pos_++];
    }
    return atom;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(pos_));
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ';') {  // comment to end of line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Status NodeError(const Node& node, const std::string& message) {
  return Status::InvalidArgument(message + " at offset " +
                                 std::to_string(node.offset));
}

bool IsList(const Node& n, const char* head) {
  return !n.is_atom && !n.items.empty() && n.items[0].is_atom &&
         n.items[0].atom == head;
}

Result<DataTypeRef> ParseType(const Node& node) {
  if (!node.is_atom) return NodeError(node, "expected a type name");
  const std::string& t = node.atom;
  if (t == "int64") return DataType::Int64();
  if (t == "double") return DataType::Double();
  if (t == "string") return DataType::String();
  if (t == "bool") return DataType::Bool();
  if (t == "date") return DataType::Date();
  return NodeError(node, "unknown type '" + t + "'");
}

Result<model::Attribute> ParseAttr(const Node& node, bool* is_key) {
  // (attr NAME TYPE [key] [nullable])
  if (node.items.size() < 3 || !node.items[1].is_atom) {
    return NodeError(node, "malformed (attr ...)");
  }
  model::Attribute attr;
  attr.name = node.items[1].atom;
  MM2_ASSIGN_OR_RETURN(attr.type, ParseType(node.items[2]));
  *is_key = false;
  for (std::size_t i = 3; i < node.items.size(); ++i) {
    if (!node.items[i].is_atom) return NodeError(node, "malformed attr flag");
    if (node.items[i].atom == "key") {
      *is_key = true;
    } else if (node.items[i].atom == "nullable") {
      attr.nullable = true;
    } else {
      return NodeError(node, "unknown attr flag '" + node.items[i].atom + "'");
    }
  }
  return attr;
}

Result<std::vector<std::string>> ParseNameList(const Node& node) {
  std::vector<std::string> names;
  if (node.is_atom) return NodeError(node, "expected a name list");
  for (const Node& item : node.items) {
    if (!item.is_atom) return NodeError(item, "expected a name");
    names.push_back(item.atom);
  }
  return names;
}

Result<Value> ParseValue(const Node& node) {
  if (!node.is_atom) return NodeError(node, "expected a value");
  const std::string& t = node.atom;
  if (t.empty()) return NodeError(node, "empty value");
  if (t[0] == '"') return Value::String(t.substr(1));
  if (t == "null") return Value::Null();
  if (t == "#t") return Value::Bool(true);
  if (t == "#f") return Value::Bool(false);
  auto parse_int = [&](std::string_view digits,
                       std::int64_t* out) -> bool {
    auto [ptr, ec] = std::from_chars(digits.data(),
                                     digits.data() + digits.size(), *out);
    return ec == std::errc() && ptr == digits.data() + digits.size();
  };
  if (t.size() > 1 && t[0] == 'N' &&
      std::isdigit(static_cast<unsigned char>(t[1]))) {
    std::int64_t label = 0;
    if (parse_int(std::string_view(t).substr(1), &label)) {
      return Value::LabeledNull(label);
    }
  }
  if (t.size() > 2 && t[0] == 'd' && t[1] == ':') {
    std::int64_t days = 0;
    if (parse_int(std::string_view(t).substr(2), &days)) {
      return Value::Date(days);
    }
  }
  // Numeric: int64 unless it contains '.' or 'e'.
  bool numeric = true;
  bool floating = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    char c = t[i];
    if (c == '.' || c == 'e' || c == 'E') {
      floating = true;
    } else if (!std::isdigit(static_cast<unsigned char>(c)) &&
               !(i == 0 && (c == '-' || c == '+'))) {
      numeric = false;
      break;
    }
  }
  if (!numeric) return NodeError(node, "unparsable value '" + t + "'");
  if (floating) {
    char* end = nullptr;
    double d = std::strtod(t.c_str(), &end);
    if (end != t.c_str() + t.size()) {
      return NodeError(node, "unparsable double '" + t + "'");
    }
    return Value::Double(d);
  }
  // std::from_chars rejects an explicit '+' sign; strip it.
  std::string_view digits = t;
  if (!digits.empty() && digits[0] == '+') digits.remove_prefix(1);
  std::int64_t i = 0;
  auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), i);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    return NodeError(node, "unparsable integer '" + t + "'");
  }
  return Value::Int64(i);
}

}  // namespace

namespace {
Result<Schema> SchemaFromNode(const Node& root);
}  // namespace

Result<Schema> ParseSchema(std::string_view text) {
  Parser parser(text);
  MM2_ASSIGN_OR_RETURN(Node root, parser.ParseOne());
  return SchemaFromNode(root);
}

namespace {
Result<Schema> SchemaFromNode(const Node& root) {
  if (!IsList(root, "schema") || root.items.size() < 3 ||
      !root.items[1].is_atom || !root.items[2].is_atom) {
    return NodeError(root, "expected (schema NAME METAMODEL ...)");
  }
  Metamodel metamodel;
  const std::string& mm = root.items[2].atom;
  if (mm == "relational") {
    metamodel = Metamodel::kRelational;
  } else if (mm == "er") {
    metamodel = Metamodel::kEntityRelationship;
  } else if (mm == "nested") {
    metamodel = Metamodel::kNested;
  } else if (mm == "oo") {
    metamodel = Metamodel::kObjectOriented;
  } else {
    return NodeError(root.items[2], "unknown metamodel '" + mm + "'");
  }
  Schema schema(root.items[1].atom, metamodel);

  for (std::size_t i = 3; i < root.items.size(); ++i) {
    const Node& item = root.items[i];
    if (IsList(item, "relation")) {
      if (item.items.size() < 2 || !item.items[1].is_atom) {
        return NodeError(item, "malformed (relation ...)");
      }
      std::vector<model::Attribute> attrs;
      std::vector<std::size_t> pk;
      for (std::size_t j = 2; j < item.items.size(); ++j) {
        if (!IsList(item.items[j], "attr")) {
          return NodeError(item.items[j], "expected (attr ...)");
        }
        bool is_key = false;
        MM2_ASSIGN_OR_RETURN(model::Attribute attr,
                             ParseAttr(item.items[j], &is_key));
        if (is_key) pk.push_back(attrs.size());
        attrs.push_back(std::move(attr));
      }
      schema.AddRelation(
          model::Relation(item.items[1].atom, std::move(attrs), pk));
    } else if (IsList(item, "fk")) {
      if (item.items.size() != 5 || !item.items[1].is_atom ||
          !item.items[3].is_atom) {
        return NodeError(item, "expected (fk FROM (A...) TO (B...))");
      }
      MM2_ASSIGN_OR_RETURN(std::vector<std::string> from,
                           ParseNameList(item.items[2]));
      MM2_ASSIGN_OR_RETURN(std::vector<std::string> to,
                           ParseNameList(item.items[4]));
      schema.AddForeignKey(model::ForeignKey{item.items[1].atom, from,
                                             item.items[3].atom, to});
    } else if (IsList(item, "entity")) {
      if (item.items.size() < 2 || !item.items[1].is_atom) {
        return NodeError(item, "malformed (entity ...)");
      }
      model::EntityType type;
      type.name = item.items[1].atom;
      for (std::size_t j = 2; j < item.items.size(); ++j) {
        const Node& part = item.items[j];
        if (IsList(part, "parent")) {
          if (part.items.size() != 2 || !part.items[1].is_atom) {
            return NodeError(part, "malformed (parent ...)");
          }
          type.parent = part.items[1].atom;
        } else if (part.is_atom && part.atom == "abstract") {
          type.abstract = true;
        } else if (IsList(part, "attr")) {
          bool is_key = false;
          MM2_ASSIGN_OR_RETURN(model::Attribute attr,
                               ParseAttr(part, &is_key));
          type.attributes.push_back(std::move(attr));
        } else {
          return NodeError(part, "unexpected entity clause");
        }
      }
      schema.AddEntityType(std::move(type));
    } else if (IsList(item, "entityset")) {
      if (item.items.size() != 3 || !item.items[1].is_atom ||
          !item.items[2].is_atom) {
        return NodeError(item, "expected (entityset NAME ROOT)");
      }
      schema.AddEntitySet(
          model::EntitySet{item.items[1].atom, item.items[2].atom});
    } else {
      return NodeError(item, "unexpected schema clause");
    }
  }
  MM2_RETURN_IF_ERROR(schema.Validate());
  return schema;
}
}  // namespace

Result<Instance> ParseInstance(std::string_view text) {
  Parser parser(text);
  MM2_ASSIGN_OR_RETURN(Node root, parser.ParseOne());
  if (!IsList(root, "instance")) {
    return NodeError(root, "expected (instance ...)");
  }
  Instance db;
  for (std::size_t i = 1; i < root.items.size(); ++i) {
    const Node& rel = root.items[i];
    if (rel.is_atom || rel.items.empty() || !rel.items[0].is_atom) {
      return NodeError(rel, "expected (RELATION (row) ...)");
    }
    const std::string& name = rel.items[0].atom;
    for (std::size_t j = 1; j < rel.items.size(); ++j) {
      const Node& row = rel.items[j];
      if (row.is_atom) return NodeError(row, "expected a row list");
      Tuple tuple;
      for (const Node& v : row.items) {
        MM2_ASSIGN_OR_RETURN(Value value, ParseValue(v));
        tuple.push_back(std::move(value));
      }
      if (!db.HasRelation(name)) db.DeclareRelation(name, tuple.size());
      MM2_RETURN_IF_ERROR(db.Insert(name, std::move(tuple)));
    }
    if (!db.HasRelation(name)) db.DeclareRelation(name, 0);
  }
  return db;
}

namespace {

std::string TermToken(const logic::Term& term) {
  switch (term.kind()) {
    case logic::Term::Kind::kVariable:
      return term.name();
    case logic::Term::Kind::kConstant:
      return ValueToken(term.value());
    case logic::Term::Kind::kFunction:
      return term.ToString();  // not parseable back; FO mappings only
  }
  return "?";
}

std::string AtomToText(const logic::Atom& atom) {
  std::string out = "(" + atom.relation;
  for (const logic::Term& t : atom.terms) out += " " + TermToken(t);
  out += ")";
  return out;
}

// A term from an s-expression atom: literals become constants, identifier
// tokens become variables.
Result<logic::Term> TermFromNode(const Node& node) {
  if (!node.is_atom) return NodeError(node, "expected a term");
  const std::string& t = node.atom;
  if (t.empty()) return NodeError(node, "empty term");
  bool identifier = true;
  for (char c : t) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '$') {
      identifier = false;
      break;
    }
  }
  // Literal forms win; "null", "N7", numbers etc. parse as constants even
  // though they are identifier-shaped, so variables should avoid those
  // spellings.
  Result<Value> value = ParseValue(node);
  if (value.ok()) return logic::Term::Const(std::move(*value));
  if (identifier && !std::isdigit(static_cast<unsigned char>(t[0]))) {
    return logic::Term::Var(t);
  }
  return value.status();
}

Result<logic::Atom> AtomFromNode(const Node& node) {
  if (node.is_atom || node.items.empty() || !node.items[0].is_atom) {
    return NodeError(node, "expected an atom (Relation term ...)");
  }
  logic::Atom atom;
  atom.relation = node.items[0].atom;
  for (std::size_t i = 1; i < node.items.size(); ++i) {
    MM2_ASSIGN_OR_RETURN(logic::Term term, TermFromNode(node.items[i]));
    atom.terms.push_back(std::move(term));
  }
  return atom;
}

Result<std::vector<logic::Atom>> AtomListFromNode(const Node& node,
                                                  const char* head) {
  if (!IsList(node, head)) {
    return NodeError(node, std::string("expected (") + head + " ...)");
  }
  std::vector<logic::Atom> atoms;
  for (std::size_t i = 1; i < node.items.size(); ++i) {
    MM2_ASSIGN_OR_RETURN(logic::Atom atom, AtomFromNode(node.items[i]));
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

}  // namespace

std::string MappingToText(const logic::Mapping& mapping) {
  std::string out = "(mapping " + mapping.name() + "\n";
  out += "  (source " + SchemaToText(mapping.source()) + "  )\n";
  out += "  (target " + SchemaToText(mapping.target()) + "  )\n";
  if (!mapping.is_second_order()) {
    for (const logic::Tgd& tgd : mapping.tgds()) {
      out += "  (tgd (body";
      for (const logic::Atom& a : tgd.body) out += " " + AtomToText(a);
      out += ") (head";
      for (const logic::Atom& a : tgd.head) out += " " + AtomToText(a);
      out += "))\n";
    }
  }
  for (const logic::Egd& egd : mapping.target_egds()) {
    out += "  (egd (body";
    for (const logic::Atom& a : egd.body) out += " " + AtomToText(a);
    out += ") (eq " + egd.left + " " + egd.right + "))\n";
  }
  out += ")\n";
  return out;
}

Result<logic::Mapping> ParseMapping(std::string_view text) {
  Parser parser(text);
  MM2_ASSIGN_OR_RETURN(Node root, parser.ParseOne());
  if (!IsList(root, "mapping") || root.items.size() < 2 ||
      !root.items[1].is_atom) {
    return NodeError(root, "expected (mapping NAME ...)");
  }
  std::optional<Schema> source;
  std::optional<Schema> target;
  std::vector<logic::Tgd> tgds;
  std::vector<logic::Egd> egds;
  for (std::size_t i = 2; i < root.items.size(); ++i) {
    const Node& item = root.items[i];
    if (IsList(item, "source") || IsList(item, "target")) {
      if (item.items.size() != 2) {
        return NodeError(item, "expected (source|target (schema ...))");
      }
      MM2_ASSIGN_OR_RETURN(Schema schema, SchemaFromNode(item.items[1]));
      if (IsList(item, "source")) {
        source = std::move(schema);
      } else {
        target = std::move(schema);
      }
    } else if (IsList(item, "tgd")) {
      if (item.items.size() != 3) {
        return NodeError(item, "expected (tgd (body ...) (head ...))");
      }
      logic::Tgd tgd;
      MM2_ASSIGN_OR_RETURN(tgd.body,
                           AtomListFromNode(item.items[1], "body"));
      MM2_ASSIGN_OR_RETURN(tgd.head,
                           AtomListFromNode(item.items[2], "head"));
      tgds.push_back(std::move(tgd));
    } else if (IsList(item, "egd")) {
      if (item.items.size() != 3 || !IsList(item.items[2], "eq") ||
          item.items[2].items.size() != 3 ||
          !item.items[2].items[1].is_atom ||
          !item.items[2].items[2].is_atom) {
        return NodeError(item, "expected (egd (body ...) (eq a b))");
      }
      logic::Egd egd;
      MM2_ASSIGN_OR_RETURN(egd.body,
                           AtomListFromNode(item.items[1], "body"));
      egd.left = item.items[2].items[1].atom;
      egd.right = item.items[2].items[2].atom;
      egds.push_back(std::move(egd));
    } else {
      return NodeError(item, "unexpected mapping clause");
    }
  }
  if (!source.has_value() || !target.has_value()) {
    return NodeError(root, "mapping needs (source ...) and (target ...)");
  }
  logic::Mapping mapping = logic::Mapping::FromTgds(
      root.items[1].atom, std::move(*source), std::move(*target),
      std::move(tgds), std::move(egds));
  MM2_RETURN_IF_ERROR(mapping.Validate());
  return mapping;
}

}  // namespace mm2::text
