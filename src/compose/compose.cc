#include "compose/compose.h"

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace mm2::compose {

using logic::Atom;
using logic::Mapping;
using logic::NameGenerator;
using logic::SoTgd;
using logic::SoTgdClause;
using logic::Substitution;
using logic::Term;

namespace {

// A normalized sigma12 rule: one body, one head atom (heads with k atoms
// are split into k rules sharing the body), plus any premise equalities.
struct ProducerRule {
  std::vector<Atom> body;
  std::vector<std::pair<Term, Term>> equalities;
  Atom head;
};

std::vector<ProducerRule> NormalizeProducers(const SoTgd& so) {
  std::vector<ProducerRule> rules;
  for (const SoTgdClause& clause : so.clauses) {
    for (const Atom& head : clause.head) {
      rules.push_back(ProducerRule{clause.body, clause.equalities, head});
    }
  }
  return rules;
}

ProducerRule RenameRule(const ProducerRule& rule, NameGenerator* gen) {
  std::set<std::string> vars;
  for (const Atom& a : rule.body) a.CollectVariables(&vars);
  rule.head.CollectVariables(&vars);
  for (const auto& [l, r] : rule.equalities) {
    l.CollectVariables(&vars);
    r.CollectVariables(&vars);
  }
  logic::VariableRenaming renaming;
  for (const std::string& v : vars) renaming[v] = gen->Next();
  ProducerRule out;
  for (const Atom& a : rule.body) out.body.push_back(a.Rename(renaming));
  for (const auto& [l, r] : rule.equalities) {
    out.equalities.emplace_back(logic::ApplyRenaming(renaming, l),
                                logic::ApplyRenaming(renaming, r));
  }
  out.head = rule.head.Rename(renaming);
  return out;
}

SoTgdClause RenameClause(const SoTgdClause& clause, NameGenerator* gen) {
  std::set<std::string> vars;
  for (const Atom& a : clause.body) a.CollectVariables(&vars);
  for (const Atom& a : clause.head) a.CollectVariables(&vars);
  for (const auto& [l, r] : clause.equalities) {
    l.CollectVariables(&vars);
    r.CollectVariables(&vars);
  }
  logic::VariableRenaming renaming;
  for (const std::string& v : vars) renaming[v] = gen->Next();
  return clause.Rename(renaming);
}

// State of one resolution attempt: bindings for the consumer clause's
// variables plus equalities forced along the way.
struct Resolution {
  Substitution theta;
  std::vector<std::pair<Term, Term>> equalities;
  std::vector<Atom> s1_body;
  bool inconsistent = false;
};

// Resolves consumer atom `atom` against producer head `head`, extending
// `res`. Consumer terms are first-order (variables/constants); producer
// head terms may contain Skolem functions over producer (S1) variables.
void ResolveAtom(const Atom& atom, const Atom& head, Resolution* res) {
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& consumer = atom.terms[i];
    Term produced = head.terms[i];  // already over S1 vocabulary
    if (consumer.is_constant()) {
      if (produced.is_constant()) {
        if (!(consumer.value() == produced.value())) {
          res->inconsistent = true;
          return;
        }
      } else {
        // Constant must equal a Skolem term or S1 variable: premise
        // equality (a selection on S1 data / function constraint).
        res->equalities.emplace_back(consumer, produced);
      }
      continue;
    }
    // Consumer variable.
    const Term* bound = res->theta.Lookup(consumer.name());
    if (bound == nullptr) {
      res->theta.Bind(consumer.name(), produced);
    } else {
      Term existing = res->theta.Apply(*bound);
      if (!(existing == produced)) {
        // Try syntactic unification first (may bind S1-side variables);
        // fall back to a premise equality for clashing function terms.
        Substitution trial = res->theta;
        if (logic::UnifyTerms(existing, produced, &trial)) {
          res->theta = std::move(trial);
        } else if (existing.is_constant() && produced.is_constant()) {
          res->inconsistent = true;
          return;
        } else {
          res->equalities.emplace_back(existing, produced);
        }
      }
    }
  }
}

void CollectFunctions(const Term& term, std::set<std::string>* out) {
  if (term.is_function()) {
    out->insert(term.name());
    for (const Term& arg : term.args()) CollectFunctions(arg, out);
  }
}

void CollectClauseFunctions(const SoTgdClause& clause,
                            std::set<std::string>* out) {
  for (const Atom& a : clause.head) {
    for (const Term& t : a.terms) CollectFunctions(t, out);
  }
  for (const auto& [l, r] : clause.equalities) {
    CollectFunctions(l, out);
    CollectFunctions(r, out);
  }
}

// The composition algorithm proper; `s` is always non-null here.
Result<Mapping> ComposeImpl(const Mapping& m12, const Mapping& m23,
                            const ComposeOptions& options, ComposeStats* s) {
  // Sanity: the mid schema vocabularies must line up. We check that every
  // relation m23 reads in its bodies exists in m12's target schema or is
  // never producible (in which case the clause is dropped later).
  SoTgd sigma12 = m12.Skolemized();
  SoTgd sigma23 = m23.Skolemized();

  std::vector<ProducerRule> producers = NormalizeProducers(sigma12);
  std::map<std::string, std::vector<const ProducerRule*>> producers_of;
  for (const ProducerRule& rule : producers) {
    producers_of[rule.head.relation].push_back(&rule);
  }

  NameGenerator fresh("_c");
  SoTgd out;

  for (const SoTgdClause& raw_clause : sigma23.clauses) {
    SoTgdClause clause = RenameClause(raw_clause, &fresh);
    // Every body atom needs at least one producer, else the clause can
    // never be triggered through m12 and imposes no S1=>S3 constraint.
    bool resolvable = true;
    for (const Atom& atom : clause.body) {
      auto it = producers_of.find(atom.relation);
      if (it == producers_of.end()) {
        resolvable = false;
        break;
      }
      bool arity_ok = false;
      for (const ProducerRule* rule : it->second) {
        if (rule->head.terms.size() == atom.terms.size()) arity_ok = true;
      }
      if (!arity_ok) resolvable = false;
    }
    if (!resolvable) {
      ++s->clauses_unresolvable;
      continue;
    }

    // Enumerate all producer combinations (the exponential step).
    std::vector<Resolution> partial = {Resolution{}};
    for (const Atom& atom : clause.body) {
      std::vector<Resolution> next;
      for (const Resolution& res : partial) {
        for (const ProducerRule* rule : producers_of[atom.relation]) {
          if (rule->head.terms.size() != atom.terms.size()) continue;
          ++s->combinations_examined;
          ProducerRule renamed = RenameRule(*rule, &fresh);
          Resolution extended = res;
          ResolveAtom(atom, renamed.head, &extended);
          if (extended.inconsistent) {
            ++s->combinations_inconsistent;
            continue;
          }
          for (const Atom& b : renamed.body) extended.s1_body.push_back(b);
          for (const auto& eq : renamed.equalities) {
            extended.equalities.push_back(eq);
          }
          next.push_back(std::move(extended));
          if (next.size() > options.max_clauses) {
            return Status::Unsupported(
                "composition exceeds max_clauses=" +
                std::to_string(options.max_clauses) +
                " (SO-tgd composition is exponential in the worst case)");
          }
        }
      }
      partial = std::move(next);
    }

    for (Resolution& res : partial) {
      SoTgdClause composed;
      composed.body = std::move(res.s1_body);
      for (Atom& atom : composed.body) {
        atom = atom.ApplySubstitution(res.theta);
      }
      for (auto& [l, r] : res.equalities) {
        Term lt = res.theta.Apply(l);
        Term rt = res.theta.Apply(r);
        if (lt == rt) continue;
        composed.equalities.emplace_back(std::move(lt), std::move(rt));
      }
      for (auto& [l, r] : clause.equalities) {
        composed.equalities.emplace_back(res.theta.Apply(l),
                                         res.theta.Apply(r));
      }
      for (const Atom& h : clause.head) {
        composed.head.push_back(h.ApplySubstitution(res.theta));
      }
      s->output_equalities += composed.equalities.size();
      out.clauses.push_back(std::move(composed));
      if (out.clauses.size() > options.max_clauses) {
        return Status::Unsupported(
            "composition exceeds max_clauses=" +
            std::to_string(options.max_clauses));
      }
    }
  }

  for (const SoTgdClause& clause : out.clauses) {
    CollectClauseFunctions(clause, &out.functions);
  }
  s->output_clauses = out.clauses.size();

  std::string name = m12.name() + ";" + m23.name();
  if (options.try_deskolemize) {
    std::optional<std::vector<logic::Tgd>> fo = logic::Deskolemize(out);
    if (fo.has_value()) {
      s->first_order = true;
      return Mapping::FromTgds(std::move(name), m12.source(), m23.target(),
                               std::move(*fo));
    }
  }
  return Mapping::FromSoTgd(std::move(name), m12.source(), m23.target(),
                            std::move(out));
}

std::size_t ClauseCount(const Mapping& m) {
  return m.is_second_order() ? m.so_tgd().clauses.size() : m.tgds().size();
}

}  // namespace

Result<Mapping> Compose(const Mapping& m12, const Mapping& m23,
                        const ComposeOptions& options, ComposeStats* stats) {
  ComposeStats local_stats;
  ComposeStats* s = stats != nullptr ? stats : &local_stats;
  *s = ComposeStats();

  obs::ObsSpan span(options.obs, "compose.run");
  span.SetAttribute("m12_clauses", ClauseCount(m12));
  span.SetAttribute("m23_clauses", ClauseCount(m23));
  obs::ScopedLatency latency(options.obs, "compose.run.latency_us");
  Result<Mapping> result = ComposeImpl(m12, m23, options, s);

  if (options.obs != nullptr) {
    obs::MetricsRegistry& m = options.obs->metrics;
    m.GetCounter("compose.runs").Increment();
    m.GetCounter("compose.combinations_examined")
        .Increment(s->combinations_examined);
    m.GetCounter("compose.combinations_inconsistent")
        .Increment(s->combinations_inconsistent);
    m.GetCounter("compose.clauses_unresolvable")
        .Increment(s->clauses_unresolvable);
    m.GetCounter("compose.output_clauses").Increment(s->output_clauses);
    m.GetCounter("compose.output_equalities").Increment(s->output_equalities);
    if (s->first_order) m.GetCounter("compose.deskolemized").Increment();
  }
  span.SetAttribute("combinations_examined", s->combinations_examined);
  span.SetAttribute("output_clauses", s->output_clauses);
  span.SetAttribute("first_order", s->first_order ? "true" : "false");
  span.SetAttribute("status", result.ok()
                                  ? std::string("OK")
                                  : std::string(StatusCodeToString(
                                        result.status().code())));
  return result;
}

}  // namespace mm2::compose
