#ifndef MM2_COMPOSE_COMPOSE_H_
#define MM2_COMPOSE_COMPOSE_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "logic/mapping.h"

namespace mm2::obs {
struct Context;
}

namespace mm2::compose {

struct ComposeOptions {
  // When the composed SO-tgd admits a first-order reading, return it as
  // plain s-t tgds. SO-tgds are closed under composition; s-t tgds are not
  // (paper Section 6.1), so this can legitimately fail, in which case the
  // result mapping stays second-order.
  bool try_deskolemize = true;
  // Abort when the output would exceed this many clauses. The composition
  // algorithm has an exponential lower bound (Fagin et al.), so a guard is
  // part of the contract; hitting it returns Unsupported.
  std::size_t max_clauses = 1 << 20;
  // Optional collector: when set, Compose opens a `compose.run` span and
  // mirrors ComposeStats into the registry's `compose.*` counters.
  obs::Context* obs = nullptr;
};

struct ComposeStats {
  // Clause-combination candidates examined (the exponential quantity).
  std::size_t combinations_examined = 0;
  // Combinations dropped because constants clashed.
  std::size_t combinations_inconsistent = 0;
  // Clauses of sigma23 dropped because some mid-schema atom has no
  // producing rule in sigma12 (the premise can never be forced).
  std::size_t clauses_unresolvable = 0;
  // Clauses in the output.
  std::size_t output_clauses = 0;
  // Premise equalities in the output (second-order residue).
  std::size_t output_equalities = 0;
  // Whether deskolemization succeeded.
  bool first_order = false;
};

// The Compose operator: given mappings m12 (S1 => S2) and m23 (S2 => S3),
// returns a mapping S1 => S3 whose instance-level semantics is relational
// composition: { <D1,D3> : exists D2. <D1,D2> in m12 and <D2,D3> in m23 }.
//
// Implements the second-order tgd composition of Fagin, Kolaitis, Popa and
// Tan: both inputs are skolemized, each mid-schema premise atom of an m23
// clause is resolved against every head atom of m12 clauses that can
// produce it, and clashes between Skolem terms become premise equalities.
// The result is deskolemized back to s-t tgds when possible.
//
// Requires m12.target() and m23.source() to agree on the relations the
// constraints mention (checked by name/arity).
Result<logic::Mapping> Compose(const logic::Mapping& m12,
                               const logic::Mapping& m23,
                               const ComposeOptions& options = {},
                               ComposeStats* stats = nullptr);

}  // namespace mm2::compose

#endif  // MM2_COMPOSE_COMPOSE_H_
