// Experiment C9: Section 3.2 — ModelGen inheritance-strategy ablation.
// For each strategy, reports the schema shape it produces (tables, widest
// table, query-view joins/unions) across hierarchy shapes, reproducing the
// classic trade-off: TPH = one wide nullable table; TPT = narrow tables
// but joins grow with depth; TPC = no joins but unions grow with leaves.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "modelgen/modelgen.h"
#include "transgen/transgen.h"
#include "workload/generators.h"

namespace {

using mm2::modelgen::InheritanceStrategy;

void StrategyBench(benchmark::State& state, InheritanceStrategy strategy) {
  std::size_t depth = static_cast<std::size_t>(state.range(0));
  std::size_t fanout = static_cast<std::size_t>(state.range(1));
  mm2::model::Schema er = mm2::workload::MakeHierarchy(depth, fanout, 3);

  std::size_t tables = 0;
  std::size_t widest = 0;
  mm2::transgen::TransGenStats stats;
  for (auto _ : state) {
    auto generated = mm2::modelgen::ErToRelational(er, strategy);
    if (!generated.ok()) {
      state.SkipWithError(generated.status().ToString().c_str());
      return;
    }
    tables = generated->relational.relations().size();
    widest = 0;
    for (const mm2::model::Relation& r : generated->relational.relations()) {
      widest = std::max(widest, r.arity());
    }
    auto views = mm2::transgen::CompileFragments(
        er, "Objects", generated->relational, generated->fragments, &stats);
    if (!views.ok()) {
      state.SkipWithError(views.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(views);
  }
  state.counters["types"] = static_cast<double>(er.entity_types().size());
  state.counters["tables"] = static_cast<double>(tables);
  state.counters["widest_table"] = static_cast<double>(widest);
  state.counters["outer_joins"] = static_cast<double>(stats.outer_joins);
  state.counters["union_branches"] = static_cast<double>(stats.components);
}

void BM_ModelGen_TPH(benchmark::State& state) {
  StrategyBench(state, InheritanceStrategy::kSingleTable);
}
void BM_ModelGen_TPT(benchmark::State& state) {
  StrategyBench(state, InheritanceStrategy::kTablePerType);
}
void BM_ModelGen_TPC(benchmark::State& state) {
  StrategyBench(state, InheritanceStrategy::kTablePerConcrete);
}

}  // namespace

BENCHMARK(BM_ModelGen_TPH)
    ->ArgNames({"depth", "fanout"})
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Args({2, 4});
BENCHMARK(BM_ModelGen_TPT)
    ->ArgNames({"depth", "fanout"})
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Args({2, 4});
BENCHMARK(BM_ModelGen_TPC)
    ->ArgNames({"depth", "fanout"})
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Args({2, 4});

MM2_BENCH_MAIN("bench_modelgen");
