// Columnar-segment storage vs the indexed baseline (EXPERIMENTS.md section
// C17). Three experiments:
//
//   1. BM_SegmentChase — the transitive-closure chase grid from
//      chase_scaling_bench, run indexed vs segmented. Under kSegmented the
//      bound-prefix probes are served by sealed-segment binary searches and
//      the restricted head-check runs through the batched RetainExisting
//      merge, so the per-point `probes` counter (hash-index probes for
//      indexed, segment probes for segmented) and the retain compare
//      tally are the acceptance metrics: on n >= 32 points the segmented
//      probe + compare traffic must be down >= 2x. Wall-clock is recorded
//      but not gated — the container pins one CPU and the win is
//      pointer-chasing avoided, which micro-timing there understates.
//
//   2. BM_RetainMicro — the head-dedup primitive in isolation: membership
//      of a sorted candidate batch against n stored rows, answered by
//      per-tuple std::set::count (the pre-segment hot path, compares
//      counted via a counting comparator) vs one RetainExisting forward
//      merge. The merge costs O(rows + candidates) compares total versus
//      ~log2(n) per candidate for the tree walk.
//
//   3. BM_MergeMicro — sealing + two-way merging segments, the
//      round-boundary maintenance cost the segmented mode pays for its
//      probe wins.
//
// Each point records `segment.<exp>.<mode>.n<n>.wall_us` histograms plus
// `.probes` / `.compares` gauges into the shared bench registry for
// BENCH_<label>.json trajectories.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "bench_report.h"

#include "chase/chase.h"
#include "instance/instance.h"
#include "instance/segment.h"
#include "instance/value.h"
#include "logic/formula.h"

namespace {

using mm2::instance::Instance;
using mm2::instance::RelationInstance;
using mm2::instance::SegmentInserter;
using mm2::instance::SegmentOpStats;
using mm2::instance::SegmentPtr;
using mm2::instance::StorageMode;
using mm2::instance::Tuple;
using mm2::instance::Value;
using mm2::logic::Atom;
using mm2::logic::Term;
using mm2::logic::Tgd;

Term V(const std::string& name) { return Term::Var(name); }

constexpr const char* kModeNames[] = {"indexed", "segmented"};

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The closure workload from chase_scaling_bench: chain R of n edges,
// copy + step rules closing T. Existential-free, so the restricted check
// on every derived head exercises the retain path.
std::vector<Tgd> ClosureRules() {
  Tgd copy;
  copy.body = {Atom{"R", {V("x"), V("y")}}};
  copy.head = {Atom{"T", {V("x"), V("y")}}};
  Tgd step;
  step.body = {Atom{"T", {V("x"), V("y")}}, Atom{"R", {V("y"), V("z")}}};
  step.head = {Atom{"T", {V("x"), V("z")}}};
  return {copy, step};
}

Instance ChainInstance(std::int64_t n) {
  Instance db;
  db.DeclareRelation("R", 2);
  db.DeclareRelation("T", 2);
  for (std::int64_t i = 0; i < n; ++i) {
    db.InsertUnchecked("R", {Value::Int64(i), Value::Int64(i + 1)});
  }
  return db;
}

void BM_SegmentChase(benchmark::State& state) {
  std::int64_t mode = state.range(0);
  std::int64_t n = state.range(1);
  std::vector<Tgd> tgds = ClosureRules();
  Instance db = ChainInstance(n);
  mm2::chase::ChaseOptions options;  // semi-naive, restricted
  options.storage =
      mode == 1 ? StorageMode::kSegmented : StorageMode::kIndexed;

  std::string point = std::string("segment.chase.") + kModeNames[mode] +
                      ".n" + std::to_string(n);
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(point + ".wall_us");

  mm2::chase::ChaseStats stats;
  std::size_t closure = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto result = mm2::chase::ChaseInstance(tgds, {}, db, options);
    double us = MicrosSince(start);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    wall.Record(us);
    stats = result->stats;
    closure = result->target.Find("T")->size();
    benchmark::DoNotOptimize(result);
  }

  // The probe traffic this mode paid: hash-index probes for indexed,
  // segment-served probes (plus declined fallbacks) for segmented.
  std::uint64_t probes = mode == 1
                             ? stats.segment.probes + stats.segment.fallbacks
                             : stats.index_probes;
  mm2::bench::Obs().metrics.GetGauge(point + ".probes").Set(
      static_cast<std::int64_t>(probes));
  mm2::bench::Obs().metrics.GetGauge(point + ".compares").Set(
      static_cast<std::int64_t>(stats.segment.compares));
  state.counters["closure_edges"] = static_cast<double>(closure);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["probes"] = static_cast<double>(probes);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  state.counters["segment_probes"] =
      static_cast<double>(stats.segment.probes);
  state.counters["segment_compares"] =
      static_cast<double>(stats.segment.compares);
  state.counters["retain_batches"] =
      static_cast<double>(stats.segment.retain_batches);
  // Tiered-list maintenance: how much merge work the LSM ladder did, what
  // the run list looked like at the end, and the zero-copy delta volume.
  mm2::bench::Obs().metrics.GetGauge(point + ".compactions").Set(
      static_cast<std::int64_t>(stats.segment.compactions));
  mm2::bench::Obs().metrics.GetGauge(point + ".live_segments").Set(
      static_cast<std::int64_t>(stats.segment_shape.live_segments));
  mm2::bench::Obs().metrics.GetGauge(point + ".delta_slice_rows").Set(
      static_cast<std::int64_t>(stats.segment.delta_slice_rows));
  state.counters["compactions"] =
      static_cast<double>(stats.segment.compactions);
  state.counters["live_segments"] =
      static_cast<double>(stats.segment_shape.live_segments);
  state.counters["delta_slice_rows"] =
      static_cast<double>(stats.segment.delta_slice_rows);
  state.counters["merged_rows"] =
      static_cast<double>(stats.segment.merged_rows);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
// mode: 0 = indexed baseline, 1 = segmented.
BENCHMARK(BM_SegmentChase)
    ->ArgNames({"mode", "n"})
    ->ArgsProduct({{0, 1}, {8, 16, 32, 64}})
    ->Unit(benchmark::kMillisecond);

// Counting comparator for the std::set baseline: every tree-walk
// comparison during count() ticks the shared counter, mirroring the
// counted-compare discipline of the segment paths.
struct CountingLess {
  std::uint64_t* compares;
  bool operator()(const Tuple& a, const Tuple& b) const {
    ++*compares;
    return a < b;
  }
};

void BM_RetainMicro(benchmark::State& state) {
  std::int64_t mode = state.range(0);
  std::int64_t n = state.range(1);

  // n stored rows (even keys); candidates sweep evens and odds, so half
  // the batch hits — the mix a restricted head-check sees mid-closure.
  RelationInstance rel(2);
  if (mode == 1) rel.set_storage_mode(StorageMode::kSegmented);
  std::uint64_t baseline_compares = 0;
  std::set<Tuple, CountingLess> baseline(CountingLess{&baseline_compares});
  for (std::int64_t i = 0; i < n; ++i) {
    Tuple row = {Value::Int64(2 * i), Value::Int64(2 * i + 1)};
    rel.Insert(row);
    baseline.insert(row);
  }
  if (mode == 1) rel.PrepareSegments();
  std::vector<Tuple> candidates;
  for (std::int64_t i = 0; i < n; ++i) {
    candidates.push_back({Value::Int64(i), Value::Int64(i + 1)});
  }
  mm2::instance::CountedSort(&candidates, nullptr);
  std::vector<const Tuple*> ptrs;
  for (const Tuple& t : candidates) ptrs.push_back(&t);

  std::string point = std::string("segment.retain.") + kModeNames[mode] +
                      ".n" + std::to_string(n);
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(point + ".wall_us");

  std::uint64_t hits = 0;
  SegmentOpStats before = rel.segment_stats();
  baseline_compares = 0;
  std::size_t iters = 0;
  for (auto _ : state) {
    ++iters;
    auto start = std::chrono::steady_clock::now();
    hits = 0;
    if (mode == 1) {
      std::vector<char> present;
      rel.RetainExisting(ptrs, &present);
      for (char p : present) hits += static_cast<std::uint64_t>(p);
    } else {
      for (const Tuple* t : ptrs) hits += baseline.count(*t);
    }
    benchmark::DoNotOptimize(hits);
    wall.Record(MicrosSince(start));
  }

  // Per-batch compare cost, averaged over the iterations.
  std::uint64_t compares =
      mode == 1 ? (rel.segment_stats() - before).compares : baseline_compares;
  double per_batch =
      iters == 0 ? 0 : static_cast<double>(compares) / static_cast<double>(iters);
  mm2::bench::Obs().metrics.GetGauge(point + ".compares").Set(
      static_cast<std::int64_t>(std::llround(per_batch)));
  state.counters["compares_per_batch"] = per_batch;
  state.counters["hits"] = static_cast<double>(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
// mode: 0 = per-tuple std::set::count, 1 = batched RetainExisting merge.
BENCHMARK(BM_RetainMicro)
    ->ArgNames({"mode", "n"})
    ->ArgsProduct({{0, 1}, {256, 1024, 4096}})
    ->Unit(benchmark::kMicrosecond);

void BM_MergeMicro(benchmark::State& state) {
  std::int64_t n = state.range(0);
  // Two interleaved sorted runs of n rows each — the sealed-run + tail
  // shape PrepareSegments merges at every round boundary.
  SegmentOpStats setup;
  SegmentInserter a(2);
  SegmentInserter b(2);
  for (std::int64_t i = 0; i < n; ++i) {
    a.Add({Value::Int64(2 * i), Value::Int64(i)});
    b.Add({Value::Int64(2 * i + 1), Value::Int64(i)});
  }
  SegmentPtr sa = a.Seal(&setup);
  SegmentPtr sb = b.Seal(&setup);

  std::string point = "segment.merge.n" + std::to_string(n);
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(point + ".wall_us");
  std::size_t rows = 0;
  for (auto _ : state) {
    SegmentOpStats stats;
    auto start = std::chrono::steady_clock::now();
    SegmentPtr merged = mm2::instance::MergeSegments({sa, sb}, &stats);
    wall.Record(MicrosSince(start));
    rows = merged->rows();
    benchmark::DoNotOptimize(merged);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n);
}
BENCHMARK(BM_MergeMicro)
    ->ArgNames({"n"})
    ->ArgsProduct({{1024, 8192, 65536}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

MM2_BENCH_MAIN("segment_bench");
