// Experiment F4: Fig. 4 — interpreting correspondences between snowflake
// schemas as join-equality constraints. Sweeps the number of dimensions d
// and attributes per dimension k; the interpretation must stay unambiguous
// (one constraint per correspondence), with cost linear in d*k and each
// constraint a small pair of project-join trees.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "chase/chase.h"
#include "match/correspondence.h"
#include "workload/generators.h"

namespace {

void BM_Fig4_Interpret(benchmark::State& state) {
  std::size_t dims = static_cast<std::size_t>(state.range(0));
  std::size_t attrs = static_cast<std::size_t>(state.range(1));
  mm2::workload::SnowflakePair pair =
      mm2::workload::MakeSnowflakePair(dims, attrs);

  std::size_t constraints = 0;
  std::size_t max_nodes = 0;
  for (auto _ : state) {
    auto result = mm2::match::InterpretCorrespondences(
        pair.source, pair.source_root, pair.target, pair.target_root,
        pair.correspondences);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    constraints = result->size();
    for (const mm2::match::InterpretedConstraint& c : *result) {
      max_nodes = std::max(max_nodes, c.source_expr->NodeCount());
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["correspondences"] =
      static_cast<double>(pair.correspondences.size());
  state.counters["constraints"] = static_cast<double>(constraints);
  state.counters["max_expr_nodes"] = static_cast<double>(max_nodes);
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * pair.correspondences.size()));
}

void BM_Fig4_InterpretAndExchange(benchmark::State& state) {
  std::size_t facts = static_cast<std::size_t>(state.range(0));
  mm2::workload::SnowflakePair pair = mm2::workload::MakeSnowflakePair(2, 2);
  mm2::workload::Rng rng(7);
  mm2::instance::Instance db =
      mm2::workload::MakeSnowflakeInstance(pair, facts, &rng);
  auto constraints = mm2::match::InterpretCorrespondences(
      pair.source, pair.source_root, pair.target, pair.target_root,
      pair.correspondences);
  if (!constraints.ok()) {
    state.SkipWithError(constraints.status().ToString().c_str());
    return;
  }
  auto mapping = mm2::match::MappingFromConstraints(
      "snow", pair.source, pair.target, *constraints);
  if (!mapping.ok()) {
    state.SkipWithError(mapping.status().ToString().c_str());
    return;
  }
  std::size_t loaded = 0;
  for (auto _ : state) {
    auto result = mm2::chase::RunChase(*mapping, db);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    loaded = result->target.TotalTuples();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * facts));
  state.counters["loaded_tuples"] = static_cast<double>(loaded);
}

}  // namespace

BENCHMARK(BM_Fig4_Interpret)
    ->ArgNames({"dims", "attrs"})
    ->Args({1, 2})   // the exact Fig. 4 shape
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({8, 2})
    ->Args({16, 2})
    ->Args({8, 4})
    ->Args({8, 8});
BENCHMARK(BM_Fig4_InterpretAndExchange)->Arg(50)->Arg(200)->Arg(800);

MM2_BENCH_MAIN("bench_fig4_correspondences");
