// Experiment F6: Fig. 6 — composing mapV-S with mapS-S' (the Addresses
// split). Verifies the qualitative claims on the exact paper schemas: the
// composition is second-order (the invented SID is shared across output
// clauses), executing it agrees with the two-step exchange, and the view
// read back over the composed result reproduces Students. Also times the
// composition and the exchange as the Students extent grows.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "chase/chase.h"
#include "compose/compose.h"
#include "logic/formula.h"
#include "model/schema.h"

namespace {

using mm2::instance::Instance;
using mm2::instance::Value;
using mm2::logic::Atom;
using mm2::logic::Mapping;
using mm2::logic::Term;
using mm2::logic::Tgd;
using mm2::model::DataType;

Term V(const char* name) { return Term::Var(name); }
Term C(const char* s) { return Term::Const(Value::String(s)); }

mm2::model::Schema ViewSchema() {
  return mm2::model::SchemaBuilder("V", mm2::model::Metamodel::kRelational)
      .Relation("Students", {{"Name", DataType::String()},
                             {"Address", DataType::String()},
                             {"Country", DataType::String()}})
      .Build();
}

mm2::model::Schema SSchema() {
  return mm2::model::SchemaBuilder("S", mm2::model::Metamodel::kRelational)
      .Relation("Names",
                {{"SID", DataType::Int64()}, {"Name", DataType::String()}},
                {"SID"})
      .Relation("Addresses", {{"SID", DataType::Int64()},
                              {"Address", DataType::String()},
                              {"Country", DataType::String()}},
                {"SID"})
      .Build();
}

mm2::model::Schema SPrimeSchema() {
  return mm2::model::SchemaBuilder("Sp", mm2::model::Metamodel::kRelational)
      .Relation("NamesP",
                {{"SID", DataType::Int64()}, {"Name", DataType::String()}},
                {"SID"})
      .Relation("Local",
                {{"SID", DataType::Int64()}, {"Address", DataType::String()}},
                {"SID"})
      .Relation("Foreign", {{"SID", DataType::Int64()},
                            {"Address", DataType::String()},
                            {"Country", DataType::String()}},
                {"SID"})
      .Build();
}

Mapping MapVS() {
  Tgd tgd;
  tgd.body = {Atom{"Students", {V("n"), V("a"), V("c")}}};
  tgd.head = {Atom{"Names", {V("sid"), V("n")}},
              Atom{"Addresses", {V("sid"), V("a"), V("c")}}};
  return Mapping::FromTgds("mapVS", ViewSchema(), SSchema(), {tgd});
}

Mapping MapSSPrime() {
  Tgd names;
  names.body = {Atom{"Names", {V("sid"), V("n")}}};
  names.head = {Atom{"NamesP", {V("sid"), V("n")}}};
  Tgd local;
  local.body = {Atom{"Addresses", {V("sid"), V("a"), C("US")}}};
  local.head = {Atom{"Local", {V("sid"), V("a")}}};
  Tgd foreign;
  foreign.body = {Atom{"Addresses", {V("sid"), V("a"), V("c")}}};
  foreign.head = {Atom{"Foreign", {V("sid"), V("a"), V("c")}}};
  return Mapping::FromTgds("mapSSp", SSchema(), SPrimeSchema(),
                           {names, local, foreign});
}

Instance Students(std::size_t rows) {
  Instance v;
  v.DeclareRelation("Students", 3);
  for (std::size_t i = 0; i < rows; ++i) {
    v.InsertUnchecked("Students",
                      {Value::String("n" + std::to_string(i)),
                       Value::String("a" + std::to_string(i)),
                       Value::String(i % 3 == 0 ? "US" : "FR")});
  }
  return v;
}

void BM_Fig6_Compose(benchmark::State& state) {
  Mapping m12 = MapVS();
  Mapping m23 = MapSSPrime();
  mm2::compose::ComposeStats stats;
  for (auto _ : state) {
    mm2::compose::ComposeOptions compose_options;
    compose_options.obs = &mm2::bench::Obs();
    auto composed =
        mm2::compose::Compose(m12, m23, compose_options, &stats);
    if (!composed.ok()) {
      state.SkipWithError(composed.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(composed);
  }
  state.counters["output_clauses"] =
      static_cast<double>(stats.output_clauses);
  state.counters["second_order"] = stats.first_order ? 0.0 : 1.0;
}
BENCHMARK(BM_Fig6_Compose);

void BM_Fig6_ExchangeComposed(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  auto composed = mm2::compose::Compose(MapVS(), MapSSPrime());
  if (!composed.ok()) {
    state.SkipWithError(composed.status().ToString().c_str());
    return;
  }
  Instance v = Students(rows);
  std::size_t produced = 0;
  for (auto _ : state) {
    auto result = mm2::chase::RunChase(*composed, v);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    produced = result->target.TotalTuples();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
  state.counters["produced_tuples"] = static_cast<double>(produced);
}
BENCHMARK(BM_Fig6_ExchangeComposed)->Arg(10)->Arg(100)->Arg(1000);

void BM_Fig6_ExchangeTwoStep(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  Mapping m12 = MapVS();
  Mapping m23 = MapSSPrime();
  Instance v = Students(rows);
  for (auto _ : state) {
    auto mid = mm2::chase::RunChase(m12, v);
    if (!mid.ok()) {
      state.SkipWithError(mid.status().ToString().c_str());
      return;
    }
    auto result = mm2::chase::RunChase(m23, mid->target);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
}
BENCHMARK(BM_Fig6_ExchangeTwoStep)->Arg(10)->Arg(100)->Arg(1000);

// Equivalence spot-check run once under the benchmark harness: the direct
// and two-step exchanges are homomorphically equivalent.
void BM_Fig6_EquivalenceCheck(benchmark::State& state) {
  auto composed = mm2::compose::Compose(MapVS(), MapSSPrime());
  if (!composed.ok()) {
    state.SkipWithError(composed.status().ToString().c_str());
    return;
  }
  Instance v = Students(30);
  bool equivalent = false;
  for (auto _ : state) {
    auto direct = mm2::chase::RunChase(*composed, v);
    auto mid = mm2::chase::RunChase(MapVS(), v);
    auto two_step = mm2::chase::RunChase(MapSSPrime(), mid->target);
    equivalent =
        mm2::chase::ExistsHomomorphism(direct->target, two_step->target) &&
        mm2::chase::ExistsHomomorphism(two_step->target, direct->target);
    benchmark::DoNotOptimize(equivalent);
  }
  state.counters["equivalent"] = equivalent ? 1.0 : 0.0;
}
BENCHMARK(BM_Fig6_EquivalenceCheck);

}  // namespace

MM2_BENCH_MAIN("bench_fig6_compose");
