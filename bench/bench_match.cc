// Experiment C3: Section 3.1.1 — the matcher. (a) Wall time as element
// count grows (quadratic in elements by construction; the claim under test
// is that it stays interactive for realistic schema sizes). (b) The paper's
// "return all viable candidates" position: candidate recall@k grows with k
// while top-1 F1 stays flat — the matcher's value is the candidate list,
// not the single best guess.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "match/matcher.h"
#include "workload/generators.h"

namespace {

void BM_Match_Scaling(benchmark::State& state) {
  std::size_t relations = static_cast<std::size_t>(state.range(0));
  mm2::workload::Rng rng(11);
  mm2::model::Schema original = mm2::workload::RandomRelationalSchema(
      "Src", relations, 6, &rng);
  mm2::workload::PerturbedSchema perturbed =
      mm2::workload::PerturbNames(original, &rng);

  mm2::match::SchemaMatcher matcher;
  std::size_t proposals = 0;
  for (auto _ : state) {
    mm2::match::MatchResult result =
        matcher.Match(original, perturbed.schema);
    proposals = result.best.size();
    benchmark::DoNotOptimize(result);
  }
  std::size_t elements = original.AllElements().size();
  state.counters["elements"] = static_cast<double>(elements);
  state.counters["proposals"] = static_cast<double>(proposals);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * elements));
}
BENCHMARK(BM_Match_Scaling)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Arg(64);

void BM_Match_RecallAtK(benchmark::State& state) {
  std::size_t k = static_cast<std::size_t>(state.range(0));
  mm2::workload::Rng rng(13);
  mm2::model::Schema original =
      mm2::workload::RandomRelationalSchema("Src", 10, 6, &rng);
  mm2::workload::PerturbedSchema perturbed =
      mm2::workload::PerturbNames(original, &rng);

  mm2::match::MatchOptions options;
  options.top_k = k;
  options.threshold = 0.2;
  mm2::match::SchemaMatcher matcher(options);

  double recall = 0.0;
  double f1 = 0.0;
  for (auto _ : state) {
    mm2::match::MatchResult result =
        matcher.Match(original, perturbed.schema);
    recall = mm2::match::CandidateRecall(result, perturbed.reference);
    f1 = mm2::match::EvaluateMatch(result.best, perturbed.reference).f1;
    benchmark::DoNotOptimize(result);
  }
  state.counters["recall_at_k"] = recall;
  state.counters["top1_f1"] = f1;
}
BENCHMARK(BM_Match_RecallAtK)->Arg(1)->Arg(2)->Arg(3)->Arg(5)->Arg(10);

void BM_Match_StructuralRounds(benchmark::State& state) {
  // Ablation: structural propagation rounds vs quality.
  std::size_t rounds = static_cast<std::size_t>(state.range(0));
  mm2::workload::Rng rng(17);
  mm2::model::Schema original =
      mm2::workload::RandomRelationalSchema("Src", 10, 6, &rng);
  mm2::workload::PerturbedSchema perturbed =
      mm2::workload::PerturbNames(original, &rng);

  mm2::match::MatchOptions options;
  options.structural_rounds = rounds;
  options.top_k = 3;
  options.threshold = 0.2;
  mm2::match::SchemaMatcher matcher(options);
  double recall = 0.0;
  for (auto _ : state) {
    mm2::match::MatchResult result =
        matcher.Match(original, perturbed.schema);
    recall = mm2::match::CandidateRecall(result, perturbed.reference);
    benchmark::DoNotOptimize(result);
  }
  state.counters["recall_at_3"] = recall;
}
BENCHMARK(BM_Match_StructuralRounds)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

MM2_BENCH_MAIN("bench_match");
