// Experiment C11 (extension): query answering through a mapping — the
// query-mediator ablation of Section 5. Certain answers computed two ways:
// materialize the whole target by chase then query it, vs rewrite the
// query onto the source and evaluate only what it needs. Expected shape:
// both return identical answers (asserted); rewriting wins when the query
// touches a small part of a large mapped database.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include <set>

#include "chase/chase.h"
#include "compose/compose.h"
#include "rewrite/rewrite.h"
#include "workload/generators.h"

namespace {

using mm2::instance::Instance;
using mm2::instance::Tuple;
using mm2::logic::Atom;
using mm2::logic::ConjunctiveQuery;
using mm2::logic::Term;

// Query over the evolved schema: join Left and Right of version 1.
ConjunctiveQuery ChainQuery(const mm2::workload::EvolutionChain& chain) {
  const mm2::model::Schema& last = chain.schemas.back();
  const mm2::model::Relation& left = last.relations()[0];
  const mm2::model::Relation& right = last.relations()[1];
  ConjunctiveQuery q;
  q.head = Atom{"Q", {Term::Var("k")}};
  Atom la;
  la.relation = left.name();
  la.terms.push_back(Term::Var("k"));
  for (std::size_t i = 1; i < left.arity(); ++i) {
    la.terms.push_back(Term::Var("l" + std::to_string(i)));
  }
  Atom ra;
  ra.relation = right.name();
  ra.terms.push_back(Term::Var("k"));
  for (std::size_t i = 1; i < right.arity(); ++i) {
    ra.terms.push_back(Term::Var("r" + std::to_string(i)));
  }
  q.body = {la, ra};
  return q;
}

void BM_Answer_Materialize(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  mm2::workload::EvolutionChain chain =
      mm2::workload::MakeEvolutionChain(1, 6);
  mm2::workload::Rng rng(61);
  Instance db = mm2::workload::MakeChainInstance(chain, rows, &rng);
  ConjunctiveQuery q = ChainQuery(chain);
  std::size_t answers = 0;
  for (auto _ : state) {
    auto chased = mm2::chase::RunChase(chain.steps[0], db);
    if (!chased.ok()) {
      state.SkipWithError(chased.status().ToString().c_str());
      return;
    }
    auto result = mm2::chase::CertainAnswers(q, chased->target);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
}
BENCHMARK(BM_Answer_Materialize)->Arg(100)->Arg(1000)->Arg(4000);

void BM_Answer_Rewrite(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  mm2::workload::EvolutionChain chain =
      mm2::workload::MakeEvolutionChain(1, 6);
  mm2::workload::Rng rng(61);
  Instance db = mm2::workload::MakeChainInstance(chain, rows, &rng);
  ConjunctiveQuery q = ChainQuery(chain);

  // Agreement with the materialize-then-query path is checked once,
  // outside the timed region.
  bool agrees = false;
  {
    auto fast = mm2::rewrite::AnswerOnSource(chain.steps[0], q, db);
    auto chased = mm2::chase::RunChase(chain.steps[0], db);
    if (fast.ok() && chased.ok()) {
      auto truth = mm2::chase::CertainAnswers(q, chased->target);
      agrees = truth.ok() &&
               std::set<Tuple>(fast->begin(), fast->end()) ==
                   std::set<Tuple>(truth->begin(), truth->end());
    }
  }
  std::size_t answers = 0;
  for (auto _ : state) {
    auto result = mm2::rewrite::AnswerOnSource(chain.steps[0], q, db);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    answers = result->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["agrees_with_chase"] = agrees ? 1.0 : 0.0;
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
}
BENCHMARK(BM_Answer_Rewrite)->Arg(100)->Arg(1000)->Arg(4000);

void BM_Answer_RewriteOnly(benchmark::State& state) {
  // The rewrite step alone (no data): how expensive is query translation
  // through chains of mappings?
  std::size_t hops = static_cast<std::size_t>(state.range(0));
  mm2::workload::EvolutionChain chain =
      mm2::workload::MakeEvolutionChain(hops, 6);
  ConjunctiveQuery q = ChainQuery(chain);
  mm2::logic::Mapping composed = chain.steps[0];
  for (std::size_t i = 1; i < chain.steps.size(); ++i) {
    auto next = mm2::compose::Compose(composed, chain.steps[i]);
    if (!next.ok()) {
      state.SkipWithError(next.status().ToString().c_str());
      return;
    }
    composed = *next;
  }
  std::size_t rules = 0;
  for (auto _ : state) {
    auto rewriting = mm2::rewrite::RewriteQuery(composed, q);
    if (!rewriting.ok()) {
      state.SkipWithError(rewriting.status().ToString().c_str());
      return;
    }
    rules = rewriting->rules.clauses.size();
    benchmark::DoNotOptimize(rewriting);
  }
  state.counters["rewritten_rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_Answer_RewriteOnly)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

MM2_BENCH_MAIN("bench_rewrite");
