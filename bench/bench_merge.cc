// Experiment C6: Section 6.3 — Merge. Sweeps correspondence density
// between two copies of a schema: at 0% the merge is a disjoint union, at
// 100% it collapses to one copy. Expected shape: merged attribute count
// equals |A| + |B| - |overlap| exactly, and the projection mappings verify.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "merge/merge.h"
#include "workload/generators.h"

namespace {

void BM_Merge_Density(benchmark::State& state) {
  std::size_t percent = static_cast<std::size_t>(state.range(0));
  mm2::workload::Rng rng(31);
  mm2::model::Schema left =
      mm2::workload::RandomRelationalSchema("Left", 8, 6, &rng);
  mm2::workload::PerturbedSchema right = mm2::workload::PerturbNames(
      left, &rng);

  // Take the first `percent`% of the reference alignment as input
  // correspondences.
  std::vector<mm2::match::Correspondence> corrs;
  std::size_t take = right.reference.size() * percent / 100;
  corrs.assign(right.reference.begin(),
               right.reference.begin() + static_cast<std::ptrdiff_t>(take));

  std::size_t total_left = 0;
  std::size_t total_right = 0;
  for (const mm2::model::Relation& r : left.relations()) {
    total_left += r.arity();
  }
  for (const mm2::model::Relation& r : right.schema.relations()) {
    total_right += r.arity();
  }

  std::size_t merged_attrs = 0;
  std::size_t overlap = 0;
  for (auto _ : state) {
    auto result = mm2::merge::Merge(left, right.schema, corrs);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    merged_attrs = 0;
    for (const mm2::model::Relation& r : result->merged.relations()) {
      merged_attrs += r.arity();
    }
    overlap = result->stats.attributes_merged;
    benchmark::DoNotOptimize(result);
  }
  state.counters["merged_attrs"] = static_cast<double>(merged_attrs);
  state.counters["expected_attrs"] =
      static_cast<double>(total_left + total_right - overlap);
  state.counters["formula_holds"] =
      merged_attrs == total_left + total_right - overlap ? 1.0 : 0.0;
}
BENCHMARK(BM_Merge_Density)->Arg(0)->Arg(25)->Arg(50)->Arg(75)->Arg(100);

void BM_Merge_SchemaScaling(benchmark::State& state) {
  std::size_t relations = static_cast<std::size_t>(state.range(0));
  mm2::workload::Rng rng(37);
  mm2::model::Schema left = mm2::workload::RandomRelationalSchema(
      "Left", relations, 6, &rng);
  mm2::workload::PerturbedSchema right =
      mm2::workload::PerturbNames(left, &rng);
  for (auto _ : state) {
    auto result =
        mm2::merge::Merge(left, right.schema, right.reference);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * relations));
}
BENCHMARK(BM_Merge_SchemaScaling)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

MM2_BENCH_MAIN("bench_merge");
