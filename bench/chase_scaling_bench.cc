// Chase executor scaling: naive rescan vs index-backed vs semi-naive delta
// matching, swept over a (tuples x rules x rounds) grid. The workload is a
// transitive-closure chain — R a path of n edges, each rule copy k closing
// its own T<k>:
//
//   R(x,y) -> T<k>(x,y)        T<k>(x,y), R(y,z) -> T<k>(x,z)
//
// so chain length n drives both the tuple count (|T| = n(n+1)/2) and the
// round count (~n), and `rules` multiplies the per-round matching work.
// This is the shape where rescanning is quadratically wasteful: after the
// first pass each round adds one path per chain suffix, yet the naive
// executor re-derives every prior assignment every round.
//
// Besides the google-benchmark numbers, each (mode, n, rules) point records
// a `chase_scaling.<mode>.n<n>.r<rules>.wall_us` histogram into the shared
// bench registry — those are the lines bench_all.sh collects into
// BENCH_<label>.json, which is how the naive/semi-naive gap is tracked
// across commits (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_report.h"

#include "chase/chase.h"
#include "instance/instance.h"
#include "logic/formula.h"

namespace {

using mm2::instance::Instance;
using mm2::instance::Value;
using mm2::logic::Atom;
using mm2::logic::Term;
using mm2::logic::Tgd;

Term V(const std::string& name) { return Term::Var(name); }

constexpr const char* kModeNames[] = {"naive", "indexed", "semi_naive"};

mm2::chase::ChaseOptions ModeOptions(std::int64_t mode) {
  mm2::chase::ChaseOptions options;
  options.naive = (mode == 0);
  options.semi_naive = (mode == 2);
  return options;
}

std::vector<Tgd> ClosureRules(std::int64_t copies) {
  std::vector<Tgd> tgds;
  for (std::int64_t k = 0; k < copies; ++k) {
    std::string t = "T" + std::to_string(k);
    Tgd copy;
    copy.body = {Atom{"R", {V("x"), V("y")}}};
    copy.head = {Atom{t, {V("x"), V("y")}}};
    Tgd step;
    step.body = {Atom{t, {V("x"), V("y")}}, Atom{"R", {V("y"), V("z")}}};
    step.head = {Atom{t, {V("x"), V("z")}}};
    tgds.push_back(std::move(copy));
    tgds.push_back(std::move(step));
  }
  return tgds;
}

Instance ChainInstance(std::int64_t n, std::int64_t copies) {
  Instance db;
  db.DeclareRelation("R", 2);
  for (std::int64_t k = 0; k < copies; ++k) {
    db.DeclareRelation("T" + std::to_string(k), 2);
  }
  for (std::int64_t i = 0; i < n; ++i) {
    db.InsertUnchecked("R", {Value::Int64(i), Value::Int64(i + 1)});
  }
  return db;
}

void BM_ChaseScaling(benchmark::State& state) {
  std::int64_t mode = state.range(0);
  std::int64_t n = state.range(1);
  std::int64_t copies = state.range(2);
  std::vector<Tgd> tgds = ClosureRules(copies);
  Instance db = ChainInstance(n, copies);
  mm2::chase::ChaseOptions options = ModeOptions(mode);

  std::string point = std::string("chase_scaling.") + kModeNames[mode] +
                      ".n" + std::to_string(n) + ".r" + std::to_string(copies);
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(point + ".wall_us");

  std::size_t closure = 0;
  mm2::chase::ChaseStats stats;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto result = mm2::chase::ChaseInstance(tgds, {}, db, options);
    double us = std::chrono::duration_cast<
                    std::chrono::duration<double, std::micro>>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    wall.Record(us);
    closure = result->target.Find("T0")->size();
    stats = result->stats;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * n * copies);
  state.counters["closure_edges"] = static_cast<double>(closure);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["assignments"] =
      static_cast<double>(stats.assignments_matched);
  state.counters["index_probes"] = static_cast<double>(stats.index_probes);
  state.counters["delta_tuples"] = static_cast<double>(stats.delta_tuples);
}
// mode: 0 = naive oracle, 1 = indexed full re-match, 2 = semi-naive deltas.
BENCHMARK(BM_ChaseScaling)
    ->ArgNames({"mode", "n", "rules"})
    ->ArgsProduct({{0, 1, 2}, {8, 16, 32, 64}, {1, 4}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

MM2_BENCH_MAIN("chase_scaling_bench");
