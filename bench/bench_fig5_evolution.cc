// Experiment F5: Fig. 5 — the schema evolution workflow. An evolution
// chain of length n is handled two ways: migrating the database step by
// step, and composing the chain first and migrating once. Expected shape:
// script cost is dominated by Compose (which grows with chain length while
// staying first-order for this lossless family), and migration cost is
// linear in |D| and much cheaper through the pre-composed mapping.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "chase/chase.h"
#include "compose/compose.h"
#include "workload/generators.h"

namespace {

void BM_Fig5_ComposeChain(benchmark::State& state) {
  std::size_t length = static_cast<std::size_t>(state.range(0));
  mm2::workload::EvolutionChain chain =
      mm2::workload::MakeEvolutionChain(length, 6);

  std::size_t clauses = 0;
  bool first_order = false;
  for (auto _ : state) {
    mm2::logic::Mapping composed = chain.steps[0];
    for (std::size_t i = 1; i < chain.steps.size(); ++i) {
      auto next = mm2::compose::Compose(composed, chain.steps[i]);
      if (!next.ok()) {
        state.SkipWithError(next.status().ToString().c_str());
        return;
      }
      composed = *next;
    }
    clauses = composed.ClauseCount();
    first_order = !composed.is_second_order();
    benchmark::DoNotOptimize(composed);
  }
  state.counters["steps"] = static_cast<double>(length);
  state.counters["clauses"] = static_cast<double>(clauses);
  state.counters["first_order"] = first_order ? 1.0 : 0.0;
}
BENCHMARK(BM_Fig5_ComposeChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Arg(32);

void BM_Fig5_MigrateStepwise(benchmark::State& state) {
  std::size_t length = static_cast<std::size_t>(state.range(0));
  std::size_t rows = static_cast<std::size_t>(state.range(1));
  mm2::workload::EvolutionChain chain =
      mm2::workload::MakeEvolutionChain(length, 6);
  mm2::workload::Rng rng(3);
  mm2::instance::Instance db =
      mm2::workload::MakeChainInstance(chain, rows, &rng);

  for (auto _ : state) {
    mm2::instance::Instance current = db;
    for (const mm2::logic::Mapping& step : chain.steps) {
      auto result = mm2::chase::RunChase(step, current);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      current = std::move(result->target);
    }
    benchmark::DoNotOptimize(current);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows * length));
}
BENCHMARK(BM_Fig5_MigrateStepwise)
    ->ArgNames({"steps", "rows"})
    ->Args({4, 100})
    ->Args({8, 100})
    ->Args({16, 100})
    ->Args({8, 400})
    ->Args({8, 1600});

void BM_Fig5_MigrateComposed(benchmark::State& state) {
  std::size_t length = static_cast<std::size_t>(state.range(0));
  std::size_t rows = static_cast<std::size_t>(state.range(1));
  mm2::workload::EvolutionChain chain =
      mm2::workload::MakeEvolutionChain(length, 6);
  mm2::workload::Rng rng(3);
  mm2::instance::Instance db =
      mm2::workload::MakeChainInstance(chain, rows, &rng);
  mm2::logic::Mapping composed = chain.steps[0];
  for (std::size_t i = 1; i < chain.steps.size(); ++i) {
    auto next = mm2::compose::Compose(composed, chain.steps[i]);
    if (!next.ok()) {
      state.SkipWithError(next.status().ToString().c_str());
      return;
    }
    composed = *next;
  }

  for (auto _ : state) {
    auto result = mm2::chase::RunChase(composed, db);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
}
BENCHMARK(BM_Fig5_MigrateComposed)
    ->ArgNames({"steps", "rows"})
    ->Args({4, 100})
    ->Args({8, 100})
    ->Args({16, 100})
    ->Args({8, 400})
    ->Args({8, 1600});

}  // namespace

MM2_BENCH_MAIN("bench_fig5_evolution");
