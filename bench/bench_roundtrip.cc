// Experiment C4: Section 4 roundtripping (the ADO.NET losslessness
// criterion). For each inheritance strategy and hierarchy size, compiles
// the views and verifies updateView ; queryView == identity on entity
// extents. Expected shape: roundtripping holds everywhere; verification
// cost is linear in rows and higher for TPT (joins) than TPH/TPC.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "modelgen/modelgen.h"
#include "transgen/transgen.h"
#include "workload/generators.h"

namespace {

using mm2::modelgen::InheritanceStrategy;

void RoundtripBench(benchmark::State& state, InheritanceStrategy strategy) {
  std::size_t depth = static_cast<std::size_t>(state.range(0));
  std::size_t rows = static_cast<std::size_t>(state.range(1));
  mm2::model::Schema er = mm2::workload::MakeHierarchy(depth, 2, 3);
  mm2::workload::Rng rng(19);
  mm2::instance::Instance entities =
      mm2::workload::MakeHierarchyInstance(er, rows, &rng);

  auto generated = mm2::modelgen::ErToRelational(er, strategy);
  if (!generated.ok()) {
    state.SkipWithError(generated.status().ToString().c_str());
    return;
  }
  auto views = mm2::transgen::CompileFragments(
      er, "Objects", generated->relational, generated->fragments);
  if (!views.ok()) {
    state.SkipWithError(views.status().ToString().c_str());
    return;
  }

  bool holds = false;
  for (auto _ : state) {
    auto ok = mm2::transgen::VerifyRoundtrip(*views, er,
                                             generated->relational, entities);
    if (!ok.ok()) {
      state.SkipWithError(ok.status().ToString().c_str());
      return;
    }
    holds = *ok;
  }
  state.counters["roundtrips"] = holds ? 1.0 : 0.0;
  state.counters["entities"] =
      static_cast<double>(entities.Find("Objects")->size());
  state.counters["tables"] =
      static_cast<double>(generated->relational.relations().size());
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * entities.Find("Objects")->size()));
}

void BM_Roundtrip_TPH(benchmark::State& state) {
  RoundtripBench(state, InheritanceStrategy::kSingleTable);
}
void BM_Roundtrip_TPT(benchmark::State& state) {
  RoundtripBench(state, InheritanceStrategy::kTablePerType);
}
void BM_Roundtrip_TPC(benchmark::State& state) {
  RoundtripBench(state, InheritanceStrategy::kTablePerConcrete);
}

}  // namespace

BENCHMARK(BM_Roundtrip_TPH)
    ->ArgNames({"depth", "rows"})
    ->Args({1, 50})
    ->Args({2, 50})
    ->Args({3, 50})
    ->Args({2, 200})
    ->Args({2, 800});
BENCHMARK(BM_Roundtrip_TPT)
    ->ArgNames({"depth", "rows"})
    ->Args({1, 50})
    ->Args({2, 50})
    ->Args({3, 50})
    ->Args({2, 200})
    ->Args({2, 800});
BENCHMARK(BM_Roundtrip_TPC)
    ->ArgNames({"depth", "rows"})
    ->Args({1, 50})
    ->Args({2, 50})
    ->Args({3, 50})
    ->Args({2, 200})
    ->Args({2, 800});

MM2_BENCH_MAIN("bench_roundtrip");
