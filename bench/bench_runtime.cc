// Experiment C8: Section 5 — runtime services. (a) Update propagation:
// per-operation latency as the entity extent grows; the claim under test
// is that the emitted *delta* stays proportional to the change, not to
// |D|. (b) Incremental view maintenance vs recompute for monotone views.
// (c) Provenance lookup cost is O(derivation), independent of |D|.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "modelgen/modelgen.h"
#include "runtime/runtime.h"
#include "transgen/transgen.h"
#include "workload/generators.h"

namespace {

using mm2::instance::Instance;
using mm2::instance::Value;

void BM_Runtime_UpdatePropagation(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  mm2::model::Schema er = mm2::workload::MakeHierarchy(1, 2, 3);
  mm2::workload::Rng rng(43);
  Instance entities = mm2::workload::MakeHierarchyInstance(er, rows, &rng);

  auto generated = mm2::modelgen::ErToRelational(
      er, mm2::modelgen::InheritanceStrategy::kTablePerType);
  if (!generated.ok()) {
    state.SkipWithError(generated.status().ToString().c_str());
    return;
  }
  auto views = mm2::transgen::CompileFragments(
      er, "Objects", generated->relational, generated->fragments);
  if (!views.ok()) {
    state.SkipWithError(views.status().ToString().c_str());
    return;
  }
  mm2::runtime::UpdatePropagator propagator(*views, generated->fragments, er,
                                            generated->relational);
  if (!propagator.Initialize(entities).ok()) {
    state.SkipWithError("init failed");
    return;
  }
  auto layout = mm2::instance::ComputeEntitySetLayout(
      er, *er.FindEntitySet("Objects"));

  std::int64_t id = 1000000;
  std::size_t delta_size = 0;
  for (auto _ : state) {
    mm2::runtime::EntityOp op;
    op.kind = mm2::runtime::EntityOp::Kind::kInsert;
    auto attrs = er.AllAttributesOf("T1");
    std::vector<Value> values = {Value::Int64(id++)};
    for (std::size_t i = 1; i < attrs->size(); ++i) {
      values.push_back(Value::String("v"));
    }
    auto tuple = mm2::instance::MakeEntityTuple(*layout, er, "T1", values);
    op.entity = *tuple;
    auto deltas = propagator.Apply(op);
    if (!deltas.ok()) {
      state.SkipWithError(deltas.status().ToString().c_str());
      return;
    }
    delta_size = 0;
    for (const auto& [table, delta] : *deltas) delta_size += delta.Size();
    benchmark::DoNotOptimize(deltas);
  }
  state.counters["base_rows"] = static_cast<double>(rows * 3);
  state.counters["delta_per_op"] = static_cast<double>(delta_size);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Runtime_UpdatePropagation)->Arg(10)->Arg(100)->Arg(1000);

void BM_Runtime_ViewMaintenance_Incremental(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  mm2::algebra::Catalog catalog;
  catalog.Add("Orders", {"Id", "Region", "Total"});
  Instance base;
  base.DeclareRelation("Orders", 3);
  for (std::size_t i = 0; i < rows; ++i) {
    base.InsertUnchecked(
        "Orders", {Value::Int64(static_cast<std::int64_t>(i)),
                   Value::String(i % 2 == 0 ? "EU" : "US"),
                   Value::Int64(static_cast<std::int64_t>(i))});
  }
  mm2::runtime::MaterializedView view(
      "eu",
      mm2::algebra::Expr::Select(
          mm2::algebra::Expr::Scan("Orders"),
          mm2::algebra::ColEqLit("Region", Value::String("EU"))),
      catalog);
  if (!view.Initialize(base).ok()) {
    state.SkipWithError("init failed");
    return;
  }
  std::int64_t id = 1000000;
  for (auto _ : state) {
    Instance new_base = base;
    mm2::instance::Tuple row = {Value::Int64(id++), Value::String("EU"),
                                Value::Int64(1)};
    new_base.InsertUnchecked("Orders", row);
    mm2::runtime::Delta base_delta;
    base_delta.inserts.DeclareRelation("Orders", 3);
    base_delta.inserts.InsertUnchecked("Orders", row);
    auto delta = view.Update(new_base, base_delta);
    if (!delta.ok()) {
      state.SkipWithError(delta.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(delta);
  }
  state.counters["incremental"] =
      view.IsIncrementallyMaintainable() ? 1.0 : 0.0;
}
BENCHMARK(BM_Runtime_ViewMaintenance_Incremental)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);

void BM_Runtime_ViewMaintenance_Recompute(benchmark::State& state) {
  // Same workload through a join view, which falls back to recompute:
  // cost scales with |D|, demonstrating why incremental paths matter.
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  mm2::algebra::Catalog catalog;
  catalog.Add("Orders", {"Id", "Region", "Total"});
  catalog.Add("Regions", {"Name", "Mgr"});
  Instance base;
  base.DeclareRelation("Orders", 3);
  base.DeclareRelation("Regions", 2);
  base.InsertUnchecked("Regions",
                       {Value::String("EU"), Value::String("Ada")});
  base.InsertUnchecked("Regions",
                       {Value::String("US"), Value::String("Bob")});
  for (std::size_t i = 0; i < rows; ++i) {
    base.InsertUnchecked(
        "Orders", {Value::Int64(static_cast<std::int64_t>(i)),
                   Value::String(i % 2 == 0 ? "EU" : "US"),
                   Value::Int64(static_cast<std::int64_t>(i))});
  }
  mm2::runtime::MaterializedView view(
      "joined",
      mm2::algebra::Expr::Join(mm2::algebra::Expr::Scan("Orders"),
                               mm2::algebra::Expr::Scan("Regions"),
                               mm2::algebra::Expr::JoinKind::kInner,
                               {{"Region", "Name"}}),
      catalog);
  if (!view.Initialize(base).ok()) {
    state.SkipWithError("init failed");
    return;
  }
  std::int64_t id = 1000000;
  for (auto _ : state) {
    Instance new_base = base;
    mm2::instance::Tuple row = {Value::Int64(id++), Value::String("EU"),
                                Value::Int64(1)};
    new_base.InsertUnchecked("Orders", row);
    mm2::runtime::Delta base_delta;
    base_delta.inserts.DeclareRelation("Orders", 3);
    base_delta.inserts.InsertUnchecked("Orders", row);
    auto delta = view.Update(new_base, base_delta);
    if (!delta.ok()) {
      state.SkipWithError(delta.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(delta);
  }
  state.counters["incremental"] =
      view.IsIncrementallyMaintainable() ? 1.0 : 0.0;
}
BENCHMARK(BM_Runtime_ViewMaintenance_Recompute)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);

void BM_Runtime_ProvenanceLookup(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  mm2::workload::EvolutionChain chain = mm2::workload::MakeEvolutionChain(1, 4);
  mm2::workload::Rng rng(47);
  Instance db = mm2::workload::MakeChainInstance(chain, rows, &rng);
  mm2::runtime::ExchangeOptions options;
  options.track_provenance = true;
  options.obs = &mm2::bench::Obs();
  auto result = mm2::runtime::Exchange(chain.steps[0], db, options);
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  mm2::chase::ChaseResult as_chase;
  as_chase.provenance = result->provenance;
  // Pick one target fact.
  mm2::chase::Fact fact;
  for (const auto& [name, rel] : result->target.relations()) {
    if (!rel.empty()) {
      fact = {name, *rel.tuples().begin()};
      break;
    }
  }
  std::size_t lineage = 0;
  for (auto _ : state) {
    lineage = mm2::runtime::Lineage(as_chase, fact).size();
    benchmark::DoNotOptimize(lineage);
  }
  state.counters["lineage_facts"] = static_cast<double>(lineage);
}
BENCHMARK(BM_Runtime_ProvenanceLookup)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

MM2_BENCH_MAIN("bench_runtime");
