// Experiment C2: Section 4 — chase-based data exchange. (a) Exchange time
// grows near-linearly in source size for the Fig. 6 mapping family. (b)
// Labeled nulls are created one per existential firing, and certain-answer
// evaluation excludes them. (c) Core computation shrinks redundant
// universal solutions.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "chase/chase.h"
#include "logic/formula.h"
#include "model/schema.h"
#include "workload/generators.h"

namespace {

using mm2::instance::Instance;
using mm2::instance::Value;
using mm2::logic::Atom;
using mm2::logic::Mapping;
using mm2::logic::Term;
using mm2::logic::Tgd;
using mm2::model::DataType;

Term V(const char* name) { return Term::Var(name); }

Mapping SplitMapping() {
  mm2::model::Schema src =
      mm2::model::SchemaBuilder("S", mm2::model::Metamodel::kRelational)
          .Relation("Data", {{"Id", DataType::Int64()},
                             {"A", DataType::String()},
                             {"B", DataType::String()}},
                    {"Id"})
          .Build();
  mm2::model::Schema tgt =
      mm2::model::SchemaBuilder("T", mm2::model::Metamodel::kRelational)
          .Relation("Left", {{"Id", DataType::Int64()},
                             {"A", DataType::String()}},
                    {"Id"})
          .Relation("Right", {{"Id", DataType::Int64()},
                              {"B", DataType::String()},
                              {"Tag", DataType::String()}},
                    {"Id"})
          .Build();
  Tgd split;
  split.body = {Atom{"Data", {V("i"), V("a"), V("b")}}};
  // Tag is existential: every row invents a labeled null.
  split.head = {Atom{"Left", {V("i"), V("a")}},
                Atom{"Right", {V("i"), V("b"), V("t")}}};
  return Mapping::FromTgds("split", src, tgt, {split});
}

Instance DataRows(std::size_t rows) {
  Instance db;
  db.DeclareRelation("Data", 3);
  for (std::size_t i = 0; i < rows; ++i) {
    db.InsertUnchecked("Data", {Value::Int64(static_cast<std::int64_t>(i)),
                                Value::String("a" + std::to_string(i)),
                                Value::String("b" + std::to_string(i))});
  }
  return db;
}

void BM_Chase_Exchange(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  Mapping mapping = SplitMapping();
  Instance db = DataRows(rows);
  std::size_t nulls = 0;
  for (auto _ : state) {
    mm2::chase::ChaseOptions chase_options;
    chase_options.obs = &mm2::bench::Obs();
    auto result = mm2::chase::RunChase(mapping, db, chase_options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    nulls = result->stats.nulls_created;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
  state.counters["nulls"] = static_cast<double>(nulls);
}
BENCHMARK(BM_Chase_Exchange)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400);

void BM_Chase_CertainAnswers(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  Mapping mapping = SplitMapping();
  mm2::chase::ChaseOptions chase_options;
  chase_options.obs = &mm2::bench::Obs();
  auto exchanged = mm2::chase::RunChase(mapping, DataRows(rows), chase_options);
  if (!exchanged.ok()) {
    state.SkipWithError(exchanged.status().ToString().c_str());
    return;
  }
  // Query projecting the null column: certain answers drop every row;
  // projecting it away keeps all.
  mm2::logic::ConjunctiveQuery with_tag;
  with_tag.head = Atom{"Q", {V("i"), V("t")}};
  with_tag.body = {Atom{"Right", {V("i"), V("b"), V("t")}}};
  mm2::logic::ConjunctiveQuery without_tag;
  without_tag.head = Atom{"Q", {V("i")}};
  without_tag.body = {Atom{"Right", {V("i"), V("b"), V("t")}}};

  std::size_t certain_with = 0;
  std::size_t certain_without = 0;
  for (auto _ : state) {
    auto a = mm2::chase::CertainAnswers(with_tag, exchanged->target);
    auto b = mm2::chase::CertainAnswers(without_tag, exchanged->target);
    if (!a.ok() || !b.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    certain_with = a->size();
    certain_without = b->size();
    benchmark::DoNotOptimize(a);
    benchmark::DoNotOptimize(b);
  }
  state.counters["certain_with_null_col"] =
      static_cast<double>(certain_with);
  state.counters["certain_without_null_col"] =
      static_cast<double>(certain_without);
}
BENCHMARK(BM_Chase_CertainAnswers)->Arg(100)->Arg(1000);

void BM_Chase_Core(benchmark::State& state) {
  // A universal solution with one redundant null row per constant row:
  // {Right(i, b, 9) , Right(i, b, N_i)} — the core folds every N_i away.
  // (The restricted chase itself avoids creating such redundancy, so the
  // instance is built directly, as a non-restricted chase would leave it.)
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  Instance redundant;
  redundant.DeclareRelation("Right", 3);
  for (std::size_t i = 0; i < rows; ++i) {
    std::int64_t id = static_cast<std::int64_t>(i);
    redundant.InsertUnchecked(
        "Right", {Value::Int64(id), Value::String("b"), Value::Int64(9)});
    redundant.InsertUnchecked(
        "Right", {Value::Int64(id), Value::String("b"),
                  Value::LabeledNull(id)});
  }
  std::size_t before = redundant.TotalTuples();
  std::size_t after = 0;
  for (auto _ : state) {
    Instance core = mm2::chase::ComputeCore(redundant);
    after = core.TotalTuples();
    benchmark::DoNotOptimize(core);
  }
  state.counters["tuples_before"] = static_cast<double>(before);
  state.counters["tuples_after_core"] = static_cast<double>(after);
}
BENCHMARK(BM_Chase_Core)->Arg(8)->Arg(16)->Arg(32);

void BM_Chase_TransitiveClosure(benchmark::State& state) {
  // Intra-schema closure: a non-s-t workload exercising ChaseInstance.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Tgd trans;
  trans.body = {Atom{"E", {V("x"), V("y")}}, Atom{"E", {V("y"), V("z")}}};
  trans.head = {Atom{"E", {V("x"), V("z")}}};
  Instance db;
  db.DeclareRelation("E", 2);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    db.InsertUnchecked("E", {Value::Int64(static_cast<std::int64_t>(i)),
                             Value::Int64(static_cast<std::int64_t>(i + 1))});
  }
  std::size_t closure = 0;
  for (auto _ : state) {
    mm2::chase::ChaseOptions chase_options;
    chase_options.obs = &mm2::bench::Obs();
    auto result =
        mm2::chase::ChaseInstance({trans}, {}, db, chase_options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    closure = result->target.Find("E")->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["closure_edges"] = static_cast<double>(closure);
}
BENCHMARK(BM_Chase_TransitiveClosure)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

MM2_BENCH_MAIN("bench_chase");
