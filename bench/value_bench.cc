// Value-layer micro-ops: the hash / equality / copy primitives every chase
// probe, hash-join build, and set insertion bottoms out in, plus a
// string-heavy transitive-closure chase where those primitives dominate.
// Each point records a `value.<op>.wall_us` (micro-ops, per batch of
// kBatch values) or `chase_scaling.strings.<mode>.n<n>.wall_us` histogram
// into the shared bench registry, which is how the compact-Value /
// intern-pool representation is tracked against the PR 4 baseline
// (EXPERIMENTS.md section C14).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_report.h"

#include "chase/chase.h"
#include "instance/instance.h"
#include "instance/value.h"
#include "logic/formula.h"

namespace {

using mm2::instance::Instance;
using mm2::instance::Tuple;
using mm2::instance::TupleHash;
using mm2::instance::Value;
using mm2::logic::Atom;
using mm2::logic::Term;
using mm2::logic::Tgd;

constexpr std::size_t kBatch = 4096;

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// A deterministic mixed pool of distinct strings with realistic lengths
// (identifier-ish short ones plus a tail long enough to defeat SSO).
std::vector<Value> StringValues(std::size_t n) {
  std::vector<Value> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string s = "entity_" + std::to_string(i % (n / 2 + 1));
    if (i % 7 == 0) s += "_with_a_long_disambiguating_suffix";
    out.push_back(Value::String(s));
  }
  return out;
}

std::vector<Value> IntValues(std::size_t n) {
  std::vector<Value> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Value::Int64(static_cast<std::int64_t>(i * 2654435761u)));
  }
  return out;
}

void BM_ValueHash(benchmark::State& state, const char* label,
                  std::vector<Value> (*make)(std::size_t)) {
  std::vector<Value> values = make(kBatch);
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(
      std::string("value.hash_") + label + ".wall_us");
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    std::size_t acc = 0;
    for (const Value& v : values) acc ^= v.Hash();
    benchmark::DoNotOptimize(acc);
    wall.Record(MicrosSince(start));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kBatch);
}

void BM_ValueCompare(benchmark::State& state, const char* label,
                     std::vector<Value> (*make)(std::size_t)) {
  std::vector<Value> values = make(kBatch);
  // Half the probes hit an equal value, half a different one — the mix a
  // set lookup or join probe sees.
  std::vector<Value> probes = values;
  for (std::size_t i = 0; i + 1 < probes.size(); i += 2) {
    probes[i] = probes[i + 1];
  }
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(
      std::string("value.compare_") + label + ".wall_us");
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    std::size_t eq = 0;
    std::size_t lt = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] == probes[i]) ++eq;
      if (values[i] < probes[i]) ++lt;
    }
    benchmark::DoNotOptimize(eq);
    benchmark::DoNotOptimize(lt);
    wall.Record(MicrosSince(start));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kBatch * 2);
}

void BM_TupleCopy(benchmark::State& state, const char* label,
                  std::vector<Value> (*make)(std::size_t)) {
  std::vector<Value> values = make(kBatch);
  constexpr std::size_t kArity = 4;
  std::vector<Tuple> rows;
  rows.reserve(kBatch / kArity);
  for (std::size_t i = 0; i + kArity <= values.size(); i += kArity) {
    rows.emplace_back(values.begin() + static_cast<std::ptrdiff_t>(i),
                      values.begin() + static_cast<std::ptrdiff_t>(i + kArity));
  }
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(
      std::string("value.tuple_copy_") + label + ".wall_us");
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    std::vector<Tuple> copy = rows;
    benchmark::DoNotOptimize(copy.data());
    wall.Record(MicrosSince(start));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
}

void BM_TupleHashProbe(benchmark::State& state, const char* label,
                       std::vector<Value> (*make)(std::size_t)) {
  std::vector<Value> values = make(kBatch);
  constexpr std::size_t kArity = 3;
  std::unordered_map<Tuple, std::size_t, TupleHash> table;
  std::vector<Tuple> probes;
  for (std::size_t i = 0; i + kArity <= values.size(); i += kArity) {
    Tuple t(values.begin() + static_cast<std::ptrdiff_t>(i),
            values.begin() + static_cast<std::ptrdiff_t>(i + kArity));
    table.emplace(t, i);
    probes.push_back(std::move(t));
  }
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(
      std::string("value.tuple_probe_") + label + ".wall_us");
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    std::size_t hits = 0;
    for (const Tuple& t : probes) hits += table.count(t);
    benchmark::DoNotOptimize(hits);
    wall.Record(MicrosSince(start));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probes.size()));
}

BENCHMARK_CAPTURE(BM_ValueHash, str, "str", StringValues);
BENCHMARK_CAPTURE(BM_ValueHash, int, "int", IntValues);
BENCHMARK_CAPTURE(BM_ValueCompare, str, "str", StringValues);
BENCHMARK_CAPTURE(BM_ValueCompare, int, "int", IntValues);
BENCHMARK_CAPTURE(BM_TupleCopy, str, "str", StringValues);
BENCHMARK_CAPTURE(BM_TupleCopy, int, "int", IntValues);
BENCHMARK_CAPTURE(BM_TupleHashProbe, str, "str", StringValues);
BENCHMARK_CAPTURE(BM_TupleHashProbe, int, "int", IntValues);

// Resident footprint: builds an Instance holding 100k arity-4 tuples whose
// string columns draw from a 1k-string domain — the duplication profile of a
// real fact table. The interesting output is `mem.peak_rss_kb` from the
// shared bench report (process high-water mark), which this workload
// dominates; wall time is recorded as a secondary point.
void BM_InstanceFootprint(benchmark::State& state) {
  constexpr std::int64_t kRows = 100000;
  constexpr std::int64_t kDomain = 1000;
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(
      "value.instance_footprint.wall_us");
  std::size_t held = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    Instance db;
    db.DeclareRelation("F", 4);
    for (std::int64_t i = 0; i < kRows; ++i) {
      std::string a =
          "warehouse_item_" + std::to_string(i % kDomain) +
          "_with_a_long_disambiguating_suffix";
      std::string b = "supplier_" + std::to_string((i * 7) % kDomain);
      std::string c = "region_" + std::to_string((i * 13) % kDomain);
      db.InsertUnchecked("F", {Value::Int64(i), Value::String(a),
                               Value::String(b), Value::String(c)});
    }
    held = db.Find("F")->size();
    benchmark::DoNotOptimize(held);
    wall.Record(MicrosSince(start));
  }
  state.counters["rows_held"] = static_cast<double>(held);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * kRows);
}
BENCHMARK(BM_InstanceFootprint)->Unit(benchmark::kMillisecond);

// String-heavy transitive closure: the PR 3 chase_scaling chain with
// string-typed node ids, so every probe key, set insertion, and delta tuple
// hashes and compares strings. Modes: 0 = indexed full re-match,
// 1 = semi-naive (the default executor).
void BM_ChaseStrings(benchmark::State& state) {
  std::int64_t mode = state.range(0);
  std::int64_t n = state.range(1);
  mm2::chase::ChaseOptions options;
  options.semi_naive = (mode == 1);

  Tgd copy;
  copy.body = {Atom{"R", {Term::Var("x"), Term::Var("y")}}};
  copy.head = {Atom{"T", {Term::Var("x"), Term::Var("y")}}};
  Tgd step;
  step.body = {Atom{"T", {Term::Var("x"), Term::Var("y")}},
               Atom{"R", {Term::Var("y"), Term::Var("z")}}};
  step.head = {Atom{"T", {Term::Var("x"), Term::Var("z")}}};
  std::vector<Tgd> tgds{copy, step};

  Instance db;
  db.DeclareRelation("R", 2);
  db.DeclareRelation("T", 2);
  auto node = [](std::int64_t i) {
    return Value::String("warehouse_node_" + std::to_string(i));
  };
  for (std::int64_t i = 0; i < n; ++i) {
    db.InsertUnchecked("R", {node(i), node(i + 1)});
  }

  const char* mode_name = mode == 1 ? "semi_naive" : "indexed";
  std::string point = std::string("chase_scaling.strings.") + mode_name +
                      ".n" + std::to_string(n);
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(point + ".wall_us");

  std::size_t closure = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto result = mm2::chase::ChaseInstance(tgds, {}, db, options);
    double us = MicrosSince(start);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    wall.Record(us);
    closure = result->target.Find("T")->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["closure_edges"] = static_cast<double>(closure);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ChaseStrings)
    ->ArgNames({"mode", "n"})
    ->ArgsProduct({{0, 1}, {16, 32, 64}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

MM2_BENCH_MAIN("value_bench");
