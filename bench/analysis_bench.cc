// Mapping-analysis cost: building the rule-dependency + position graphs,
// classifying termination, and stratifying, swept over synthetic rule sets
// of 16 / 64 / 256 rules in two shapes:
//
//   layered: R<k>(x,y) -> R<k+1>(x,y) — a pure chain, one stratum per
//            rule, weakly acyclic, the stratification-heavy case;
//   tangled: layered plus every 4th rule closing back with an existential
//            (R<k>(x,y) -> exists z. R<k-3>(y,z)) — dependency cycles AND
//            position-graph cycles through special edges, the case where
//            the per-special-edge reachability scan does real work.
//
// `explain mapping` runs this exact code path interactively, so its cost
// is an observability-latency budget, not a chase-throughput one. Each
// (shape, rules) point records an `analysis.<shape>.r<rules>.wall_us`
// histogram into the shared bench registry for BENCH_<label>.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_report.h"

#include "analysis/analysis.h"
#include "logic/formula.h"

namespace {

using mm2::logic::Atom;
using mm2::logic::Term;
using mm2::logic::Tgd;

Term V(const std::string& name) { return Term::Var(name); }

constexpr const char* kShapeNames[] = {"layered", "tangled"};

std::vector<Tgd> SyntheticRules(std::int64_t shape, std::int64_t rules) {
  std::vector<Tgd> tgds;
  for (std::int64_t k = 0; k < rules; ++k) {
    Tgd step;
    std::string from = "R" + std::to_string(k);
    std::string to = "R" + std::to_string(k + 1);
    step.body = {Atom{from, {V("x"), V("y")}}};
    step.head = {Atom{to, {V("x"), V("y")}}};
    tgds.push_back(std::move(step));
    if (shape == 1 && k % 4 == 3) {
      Tgd back;
      back.body = {Atom{to, {V("x"), V("y")}}};
      back.head = {
          Atom{"R" + std::to_string(k - 3), {V("y"), V("z")}}};  // z fresh
      tgds.push_back(std::move(back));
    }
  }
  return tgds;
}

void BM_AnalyzeClosure(benchmark::State& state) {
  std::int64_t shape = state.range(0);
  std::int64_t rules = state.range(1);
  std::vector<Tgd> tgds = SyntheticRules(shape, rules);

  std::string point = std::string("analysis.") + kShapeNames[shape] + ".r" +
                      std::to_string(rules);
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(point + ".wall_us");

  mm2::analysis::MappingAnalysis last;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    mm2::analysis::MappingAnalysis a =
        mm2::analysis::AnalyzeClosure(tgds, {});
    double us = std::chrono::duration_cast<
                    std::chrono::duration<double, std::micro>>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    wall.Record(us);
    benchmark::DoNotOptimize(a);
    last = std::move(a);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tgds.size()));
  state.counters["rules"] = static_cast<double>(last.rules.size());
  state.counters["strata"] = static_cast<double>(last.strata.size());
  state.counters["positions"] = static_cast<double>(last.positions.size());
  state.counters["terminating"] = last.terminating() ? 1 : 0;
}
// shape: 0 = layered chain (weakly acyclic), 1 = tangled (special cycles).
BENCHMARK(BM_AnalyzeClosure)
    ->ArgNames({"shape", "rules"})
    ->ArgsProduct({{0, 1}, {16, 64, 256}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

MM2_BENCH_MAIN("analysis_bench");
