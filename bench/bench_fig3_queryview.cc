// Experiment F3: Fig. 3 — the compiled query view. Measures (a) compile
// time of the CASE/UNION query from the Fig. 2 fragments and (b) its
// evaluation time as table cardinality grows. Expected shape: compilation
// is instant and independent of data; evaluation grows linearly in rows;
// the roundtrip property holds at every size.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "instance/instance.h"
#include "model/schema.h"
#include "modelgen/modelgen.h"
#include "transgen/transgen.h"
#include "workload/generators.h"

namespace {

using mm2::instance::Instance;
using mm2::instance::Value;
using mm2::model::DataType;

mm2::model::Schema PersonEr() {
  return mm2::model::SchemaBuilder(
             "ER", mm2::model::Metamodel::kEntityRelationship)
      .EntityType("Person", "",
                  {{"Id", DataType::Int64()}, {"Name", DataType::String()}})
      .EntityType("Employee", "Person", {{"Dept", DataType::String()}})
      .EntityType("Customer", "Person",
                  {{"CreditScore", DataType::Int64()},
                   {"BillingAddr", DataType::String()}})
      .EntitySet("Persons", "Person")
      .Build();
}

mm2::model::Schema Fig2Sql() {
  return mm2::model::SchemaBuilder("SQL",
                                   mm2::model::Metamodel::kRelational)
      .Relation("HR",
                {{"Id", DataType::Int64()}, {"Name", DataType::String()}},
                {"Id"})
      .Relation("Empl",
                {{"Id", DataType::Int64()}, {"Dept", DataType::String()}},
                {"Id"})
      .Relation("Client",
                {{"Id", DataType::Int64()},
                 {"Name", DataType::String()},
                 {"Score", DataType::Int64()},
                 {"Addr", DataType::String()}},
                {"Id"})
      .Build();
}

std::vector<mm2::modelgen::MappingFragment> Fig2Fragments() {
  return {
      {"Persons", {"Person", "Employee"}, "HR",
       {{"Id", "Id"}, {"Name", "Name"}}, ""},
      {"Persons", {"Employee"}, "Empl", {{"Id", "Id"}, {"Dept", "Dept"}}, ""},
      {"Persons",
       {"Customer"},
       "Client",
       {{"Id", "Id"}, {"Name", "Name"}, {"CreditScore", "Score"},
        {"BillingAddr", "Addr"}},
       ""},
  };
}

Instance TablesWithRows(const mm2::model::Schema& sql, std::size_t rows) {
  Instance db = Instance::EmptyFor(sql);
  for (std::size_t i = 0; i < rows; ++i) {
    std::int64_t id = static_cast<std::int64_t>(i);
    std::string name = "p" + std::to_string(i);
    switch (i % 3) {
      case 0:  // plain person
        db.InsertUnchecked("HR", {Value::Int64(id), Value::String(name)});
        break;
      case 1:  // employee: HR + Empl
        db.InsertUnchecked("HR", {Value::Int64(id), Value::String(name)});
        db.InsertUnchecked("Empl", {Value::Int64(id), Value::String("dept")});
        break;
      case 2:  // customer: Client only
        db.InsertUnchecked("Client",
                           {Value::Int64(id), Value::String(name),
                            Value::Int64(700), Value::String("addr")});
        break;
    }
  }
  return db;
}

void BM_Fig3_Compile(benchmark::State& state) {
  mm2::model::Schema er = PersonEr();
  mm2::model::Schema sql = Fig2Sql();
  auto fragments = Fig2Fragments();
  mm2::transgen::TransGenStats stats;
  for (auto _ : state) {
    auto views =
        mm2::transgen::CompileFragments(er, "Persons", sql, fragments, &stats);
    if (!views.ok()) {
      state.SkipWithError(views.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(views);
  }
  state.counters["query_view_nodes"] =
      static_cast<double>(stats.query_view_nodes);
  state.counters["outer_joins"] = static_cast<double>(stats.outer_joins);
  state.counters["case_branches"] = static_cast<double>(stats.case_branches);
}
BENCHMARK(BM_Fig3_Compile);

void BM_Fig3_Evaluate(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  mm2::model::Schema er = PersonEr();
  mm2::model::Schema sql = Fig2Sql();
  auto views =
      mm2::transgen::CompileFragments(er, "Persons", sql, Fig2Fragments());
  if (!views.ok()) {
    state.SkipWithError(views.status().ToString().c_str());
    return;
  }
  Instance tables = TablesWithRows(sql, rows);

  std::size_t entities = 0;
  for (auto _ : state) {
    Instance out;
    mm2::Status status =
        mm2::transgen::ApplyQueryView(*views, er, sql, tables, &out);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    entities = out.Find("Persons")->size();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
  state.counters["entities"] = static_cast<double>(entities);
}
BENCHMARK(BM_Fig3_Evaluate)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Fig3_Roundtrip(benchmark::State& state) {
  std::size_t rows_per_type = static_cast<std::size_t>(state.range(0));
  mm2::model::Schema er = PersonEr();
  mm2::model::Schema sql = Fig2Sql();
  auto views =
      mm2::transgen::CompileFragments(er, "Persons", sql, Fig2Fragments());
  if (!views.ok()) {
    state.SkipWithError(views.status().ToString().c_str());
    return;
  }
  mm2::workload::Rng rng(1);
  // Reuse the hierarchy instance generator shape via manual construction.
  Instance entities = Instance::EmptyFor(er);
  auto layout = mm2::instance::ComputeEntitySetLayout(
      er, *er.FindEntitySet("Persons"));
  std::int64_t id = 0;
  for (std::size_t i = 0; i < rows_per_type; ++i) {
    auto p = mm2::instance::MakeEntityTuple(
        *layout, er, "Person",
        {Value::Int64(id++), Value::String("n" + std::to_string(i))});
    auto e = mm2::instance::MakeEntityTuple(
        *layout, er, "Employee",
        {Value::Int64(id++), Value::String("e" + std::to_string(i)),
         Value::String("d")});
    auto c = mm2::instance::MakeEntityTuple(
        *layout, er, "Customer",
        {Value::Int64(id++), Value::String("c" + std::to_string(i)),
         Value::Int64(1), Value::String("a")});
    entities.InsertUnchecked("Persons", *p);
    entities.InsertUnchecked("Persons", *e);
    entities.InsertUnchecked("Persons", *c);
  }
  (void)rng;

  bool holds = false;
  for (auto _ : state) {
    auto ok = mm2::transgen::VerifyRoundtrip(*views, er, sql, entities);
    if (!ok.ok()) {
      state.SkipWithError(ok.status().ToString().c_str());
      return;
    }
    holds = *ok;
  }
  state.counters["roundtrips"] = holds ? 1.0 : 0.0;
}
BENCHMARK(BM_Fig3_Roundtrip)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

MM2_BENCH_MAIN("bench_fig3_queryview");
