// Experiment F2: Fig. 2 — generating mapping constraints between an
// inheritance hierarchy and tables. Sweeps hierarchy depth and fanout and
// reports constraint (tgd) counts and fragment counts; the paper's claim is
// that each constraint stays small and the count grows linearly with the
// number of types, even though the *implied* query (Fig. 3) is complex.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "modelgen/modelgen.h"
#include "workload/generators.h"

namespace {

using mm2::modelgen::ErToRelational;
using mm2::modelgen::InheritanceStrategy;

void BM_Fig2_ConstraintGeneration(benchmark::State& state) {
  std::size_t depth = static_cast<std::size_t>(state.range(0));
  std::size_t fanout = static_cast<std::size_t>(state.range(1));
  mm2::model::Schema er = mm2::workload::MakeHierarchy(depth, fanout, 3);

  std::size_t constraints = 0;
  std::size_t fragments = 0;
  std::size_t max_body_atoms = 0;
  for (auto _ : state) {
    auto result = ErToRelational(er, InheritanceStrategy::kTablePerType);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    constraints = result->mapping.tgds().size();
    fragments = result->fragments.size();
    for (const mm2::logic::Tgd& tgd : result->mapping.tgds()) {
      max_body_atoms = std::max(max_body_atoms, tgd.body.size());
    }
    benchmark::DoNotOptimize(result->relational);
  }
  state.counters["types"] =
      static_cast<double>(er.entity_types().size());
  state.counters["constraints"] = static_cast<double>(constraints);
  state.counters["fragments"] = static_cast<double>(fragments);
  state.counters["max_body_atoms"] = static_cast<double>(max_body_atoms);
}

}  // namespace

BENCHMARK(BM_Fig2_ConstraintGeneration)
    ->ArgNames({"depth", "fanout"})
    ->Args({1, 2})   // the exact Fig. 2 shape: Person <- {Employee, Customer}
    ->Args({2, 2})
    ->Args({3, 2})
    ->Args({4, 2})
    ->Args({2, 3})
    ->Args({2, 4})
    ->Args({6, 1});

MM2_BENCH_MAIN("bench_fig2_constraints");
