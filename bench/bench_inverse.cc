// Experiment C7: Section 6.4 — Inverse and quasi-inverse. Over three
// mapping families (lossless vertical split, lossy projection, union
// funnel), computes the (quasi-)inverse and checks the paper's claims: an
// exact inverse exists and roundtrips iff the mapping is lossless; the
// quasi-inverse recovers exactly the recoverable part.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "inverse/inverse.h"
#include "logic/formula.h"
#include "workload/generators.h"

namespace {

using mm2::logic::Atom;
using mm2::logic::Mapping;
using mm2::logic::Term;
using mm2::logic::Tgd;

// Lossless: every relation split vertically with the key in both halves.
Mapping LosslessFamily(const mm2::model::Schema& source) {
  mm2::model::Schema target("Split", mm2::model::Metamodel::kRelational);
  std::vector<Tgd> tgds;
  for (const mm2::model::Relation& r : source.relations()) {
    std::size_t half = r.arity() / 2 + 1;
    std::vector<mm2::model::Attribute> left(
        r.attributes().begin(),
        r.attributes().begin() + static_cast<std::ptrdiff_t>(half));
    std::vector<mm2::model::Attribute> right;
    right.push_back(r.attributes()[0]);  // key
    right.insert(right.end(),
                 r.attributes().begin() + static_cast<std::ptrdiff_t>(half),
                 r.attributes().end());
    target.AddRelation(mm2::model::Relation(r.name() + "_L", left, {0}));
    target.AddRelation(mm2::model::Relation(r.name() + "_R", right, {0}));
    Tgd tgd;
    Atom body;
    body.relation = r.name();
    for (std::size_t i = 0; i < r.arity(); ++i) {
      body.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    Atom hl;
    hl.relation = r.name() + "_L";
    for (std::size_t i = 0; i < half; ++i) {
      hl.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    Atom hr;
    hr.relation = r.name() + "_R";
    hr.terms.push_back(Term::Var("x0"));
    for (std::size_t i = half; i < r.arity(); ++i) {
      hr.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    tgd.body = {std::move(body)};
    tgd.head = {std::move(hl), std::move(hr)};
    tgds.push_back(std::move(tgd));
  }
  return Mapping::FromTgds("lossless", source, target, std::move(tgds));
}

// Lossy: drop every relation's last attribute.
Mapping LossyFamily(const mm2::model::Schema& source) {
  mm2::model::Schema target("Proj", mm2::model::Metamodel::kRelational);
  std::vector<Tgd> tgds;
  for (const mm2::model::Relation& r : source.relations()) {
    std::vector<mm2::model::Attribute> kept(
        r.attributes().begin(), r.attributes().end() - 1);
    target.AddRelation(mm2::model::Relation(r.name() + "_P", kept, {0}));
    Tgd tgd;
    Atom body;
    body.relation = r.name();
    for (std::size_t i = 0; i < r.arity(); ++i) {
      body.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    Atom head;
    head.relation = r.name() + "_P";
    for (std::size_t i = 0; i + 1 < r.arity(); ++i) {
      head.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    tgd.body = {std::move(body)};
    tgd.head = {std::move(head)};
    tgds.push_back(std::move(tgd));
  }
  return Mapping::FromTgds("lossy", source, target, std::move(tgds));
}

void InverseBench(benchmark::State& state, bool lossless) {
  std::size_t relations = static_cast<std::size_t>(state.range(0));
  mm2::workload::Rng rng(41);
  mm2::model::Schema source = mm2::workload::RandomRelationalSchema(
      "Src", relations, 5, &rng);
  Mapping mapping =
      lossless ? LosslessFamily(source) : LossyFamily(source);
  mm2::instance::Instance db =
      mm2::workload::RandomInstance(source, 20, &rng);

  bool exact = false;
  bool roundtrips = false;
  std::size_t lost = 0;
  for (auto _ : state) {
    auto result = mm2::inverse::ComputeInverse(mapping);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    exact = result->exact;
    lost = result->lost.size();
    auto rt = mm2::inverse::VerifyRoundtrip(mapping, result->inverse, db);
    roundtrips = rt.ok() && *rt;
    benchmark::DoNotOptimize(result);
  }
  state.counters["exact"] = exact ? 1.0 : 0.0;
  state.counters["roundtrips"] = roundtrips ? 1.0 : 0.0;
  state.counters["lost_elements"] = static_cast<double>(lost);
}

void BM_Inverse_Lossless(benchmark::State& state) {
  InverseBench(state, /*lossless=*/true);
}
void BM_Inverse_Lossy(benchmark::State& state) {
  InverseBench(state, /*lossless=*/false);
}

BENCHMARK(BM_Inverse_Lossless)->Arg(1)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Inverse_Lossy)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

MM2_BENCH_MAIN("bench_inverse");
