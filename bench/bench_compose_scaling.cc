// Experiment C1: the Section 6.1 claims about Compose. (a) The worst-case
// family (k producers of the mid relation, a consumer reading it j times)
// produces k^j output clauses — the exponential lower bound of Fagin et
// al. (b) The benign family (disjoint copy chains) composes in linear
// time/size. (c) s-t tgds are not closed under composition: the shared-
// existential family yields a second-order result.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include <cmath>

#include "compose/compose.h"
#include "workload/generators.h"

namespace {

void BM_Compose_Blowup(benchmark::State& state) {
  std::size_t producers = static_cast<std::size_t>(state.range(0));
  std::size_t atoms = static_cast<std::size_t>(state.range(1));
  auto [m12, m23] = mm2::workload::MakeComposeBlowup(producers, atoms);
  mm2::compose::ComposeStats stats;
  for (auto _ : state) {
    mm2::compose::ComposeOptions compose_options;
    compose_options.obs = &mm2::bench::Obs();
    auto composed =
        mm2::compose::Compose(m12, m23, compose_options, &stats);
    if (!composed.ok()) {
      state.SkipWithError(composed.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(composed);
  }
  state.counters["expected_clauses"] = std::pow(
      static_cast<double>(producers), static_cast<double>(atoms));
  state.counters["output_clauses"] =
      static_cast<double>(stats.output_clauses);
  state.counters["combinations"] =
      static_cast<double>(stats.combinations_examined);
}
BENCHMARK(BM_Compose_Blowup)
    ->ArgNames({"producers", "atoms"})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({2, 6})
    ->Args({2, 8})
    ->Args({2, 10})
    ->Args({3, 3})
    ->Args({3, 5})
    ->Args({4, 4});

void BM_Compose_Benign(benchmark::State& state) {
  std::size_t width = static_cast<std::size_t>(state.range(0));
  auto [m12, m23] = mm2::workload::MakeComposeBenign(width);
  mm2::compose::ComposeStats stats;
  for (auto _ : state) {
    mm2::compose::ComposeOptions compose_options;
    compose_options.obs = &mm2::bench::Obs();
    auto composed =
        mm2::compose::Compose(m12, m23, compose_options, &stats);
    if (!composed.ok()) {
      state.SkipWithError(composed.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(composed);
  }
  state.counters["output_clauses"] =
      static_cast<double>(stats.output_clauses);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * width));
}
BENCHMARK(BM_Compose_Benign)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_Compose_GuardStopsBlowup(benchmark::State& state) {
  // With a clause budget, the exponential family fails fast instead of
  // exhausting memory — the "compromises must be accepted" of Section 2.
  auto [m12, m23] = mm2::workload::MakeComposeBlowup(4, 10);  // 4^10 > 2^16
  mm2::compose::ComposeOptions options;
  options.max_clauses = 1 << 16;
  bool guarded = false;
  for (auto _ : state) {
    auto composed = mm2::compose::Compose(m12, m23, options);
    guarded = composed.status().code() == mm2::StatusCode::kUnsupported;
    benchmark::DoNotOptimize(composed);
  }
  state.counters["guard_tripped"] = guarded ? 1.0 : 0.0;
}
BENCHMARK(BM_Compose_GuardStopsBlowup);

}  // namespace

MM2_BENCH_MAIN("bench_compose_scaling");
