#ifndef MM2_BENCH_BENCH_REPORT_H_
#define MM2_BENCH_BENCH_REPORT_H_

// Shared reporting shim for every bench_*.cc: MM2_BENCH_MAIN replaces
// BENCHMARK_MAIN and, after the google-benchmark run, dumps the shared
// obs::Context registry as machine-parseable JSON lines
//   {"bench": "...", "metric": "...", "value": ..., "unit": "..."}
// (one per metric) on stdout, so BENCH_*.json trajectories can be collected
// with a grep for lines starting with '{"bench"'. Benches route operator
// calls through Obs() (ChaseOptions::obs, ComposeOptions::obs, ...) to
// enrich the dump; the total wall time is always recorded.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "common/thread_pool.h"
#include "instance/segment.h"
#include "obs/obs.h"

namespace mm2::bench {

// The context benches hand to engine/chase/compose calls. Function-local
// static so the header stays include-anywhere.
inline obs::Context& Obs() {
  static obs::Context ctx;
  return ctx;
}

// The MM2_THREADS-resolved default worker count this bench process runs
// under, resolved once. Benches that sweep an explicit thread axis encode
// the axis in the metric name instead; this field captures the ambient
// setting so comparison tooling can refuse to diff runs taken at
// different thread counts.
inline std::size_t BenchThreads() {
  static const std::size_t resolved = common::ResolveThreadCount(0);
  return resolved;
}

// The MM2_STORAGE-resolved ambient storage mode, resolved once. Benches
// that sweep storage explicitly encode the mode in the metric name; this
// stamp lets comparison tooling refuse to diff runs taken under different
// default storage backends.
inline const char* BenchStorage() {
  static const char* resolved = instance::StorageModeName(
      instance::ResolveStorageMode(instance::StorageMode::kDefault));
  return resolved;
}

inline void PrintJsonLine(const std::string& bench, const std::string& metric,
                          double value, const std::string& unit) {
  std::printf("{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.6g, "
              "\"unit\": \"%s\", \"threads\": %zu, \"hw_concurrency\": %u, "
              "\"storage\": \"%s\"}\n",
              bench.c_str(), metric.c_str(), value, unit.c_str(),
              BenchThreads(), std::thread::hardware_concurrency(),
              BenchStorage());
}

// Peak resident set size of this process in KiB (VmHWM from
// /proc/self/status, via the shared obs probe), or 0 where the proc
// interface is unavailable. The high-water mark covers the whole bench
// run, so trajectories track the memory envelope of the workload, not a
// point-in-time sample.
inline double PeakRssKb() { return obs::PeakRssKb(); }

// Histograms named *_us report in microseconds, everything else is a bare
// value; counters and gauges are counts. One mem.peak_rss_kb record (unit
// "kb") always closes the dump so bench_compare.py's mem.* family can
// gate the memory envelope.
inline void ReportRegistry(const std::string& bench) {
  obs::MetricsSnapshot snap = Obs().metrics.Snapshot();
  for (const obs::CounterSnapshot& c : snap.counters) {
    PrintJsonLine(bench, c.name, static_cast<double>(c.value), "count");
  }
  for (const obs::GaugeSnapshot& g : snap.gauges) {
    PrintJsonLine(bench, g.name, static_cast<double>(g.value), "count");
  }
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    std::string unit = h.name.size() > 3 &&
                               h.name.compare(h.name.size() - 3, 3, "_us") == 0
                           ? "us"
                           : "value";
    PrintJsonLine(bench, h.name + ".count", static_cast<double>(h.count),
                  "count");
    PrintJsonLine(bench, h.name + ".p50", h.Percentile(0.5), unit);
    PrintJsonLine(bench, h.name + ".p99", h.Percentile(0.99), unit);
    PrintJsonLine(bench, h.name + ".max", h.max, unit);
  }
  PrintJsonLine(bench, "mem.peak_rss_kb", PeakRssKb(), "kb");
}

}  // namespace mm2::bench

#define MM2_BENCH_MAIN(bench_name)                                           \
  int main(int argc, char** argv) {                                          \
    auto mm2_bench_start = std::chrono::steady_clock::now();                 \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    ::benchmark::RunSpecifiedBenchmarks();                                   \
    ::benchmark::Shutdown();                                                 \
    double mm2_total_us =                                                    \
        std::chrono::duration_cast<                                          \
            std::chrono::duration<double, std::micro>>(                      \
            std::chrono::steady_clock::now() - mm2_bench_start)              \
            .count();                                                        \
    ::mm2::bench::Obs().metrics.GetHistogram("bench.total_runtime_us")       \
        .Record(mm2_total_us);                                               \
    ::mm2::bench::ReportRegistry(bench_name);                                \
    return 0;                                                                \
  }                                                                          \
  static_assert(true, "require trailing semicolon")

#endif  // MM2_BENCH_BENCH_REPORT_H_
