// Experiment C19: incremental exchange maintenance vs full re-chase.
//
// Grid: instance size (rows) x delta fraction (permille of rows, applied
// as half insertions / half deletions per maintain). Each point records a
// per-call `incremental.r<rows>.f<permille>.maintain_us` histogram; one
// `incremental.r<rows>.rechase_us` histogram per size records the full
// Exchange of an equally-sized source. The custom main derives
// `incremental.r<rows>.f<permille>.speedup` = rechase p50 / maintain p50.
//
// The acceptance bar rides the largest size at the 1% fraction: the p50
// maintain over >=8 calls must beat the full re-chase by >=10x — update
// latency tracks |delta| (plus a provenance sweep), not |instance|.
//
// The mapping exercises all three trigger shapes the maintain path has to
// re-match: a projection copy, a two-relation key join, and an existential
// head riding the Skolem memo. Heads are disjoint and there are no egds,
// so no maintain ever needs the journal fallback (the chase-identical
// shape the 100-seed differential sweep validates).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bench_report.h"

#include "instance/instance.h"
#include "logic/formula.h"
#include "logic/mapping.h"
#include "model/schema.h"
#include "runtime/runtime.h"

namespace {

using mm2::instance::Instance;
using mm2::instance::Tuple;
using mm2::instance::Value;
using mm2::logic::Atom;
using mm2::logic::Mapping;
using mm2::logic::Term;
using mm2::logic::Tgd;

Term V(const std::string& name) { return Term::Var(name); }

constexpr std::int64_t kSizes[] = {1000, 8000, 32000};
constexpr std::int64_t kPermille[] = {1, 10, 100};

// R(k,a) -> T0(k,a);  R(k,a),S(k,b) -> T1(a,b);  S(k,b) -> exists n T2(b,n).
Mapping BenchMapping() {
  mm2::model::Schema src("Src", mm2::model::Metamodel::kRelational);
  auto attr = [](const char* n) {
    return mm2::model::Attribute{n, mm2::model::DataType::Int64(), false};
  };
  src.AddRelation(mm2::model::Relation("R", {attr("k"), attr("a")}, {}));
  src.AddRelation(mm2::model::Relation("S", {attr("k"), attr("b")}, {}));
  mm2::model::Schema tgt("Tgt", mm2::model::Metamodel::kRelational);
  tgt.AddRelation(mm2::model::Relation("T0", {attr("k"), attr("a")}, {}));
  tgt.AddRelation(mm2::model::Relation("T1", {attr("a"), attr("b")}, {}));
  tgt.AddRelation(mm2::model::Relation("T2", {attr("b"), attr("n")}, {}));
  Tgd copy;
  copy.body = {Atom{"R", {V("k"), V("a")}}};
  copy.head = {Atom{"T0", {V("k"), V("a")}}};
  Tgd join;
  join.body = {Atom{"R", {V("k"), V("a")}}, Atom{"S", {V("k"), V("b")}}};
  join.head = {Atom{"T1", {V("a"), V("b")}}};
  Tgd exist;
  exist.body = {Atom{"S", {V("k"), V("b")}}};
  exist.head = {Atom{"T2", {V("b"), V("n")}}};  // n existential
  return Mapping::FromTgds("bench", src, tgt, {copy, join, exist});
}

Tuple Row(std::int64_t k, std::int64_t v) {
  return {Value::Int64(k), Value::Int64(v)};
}

Instance SeedSource(std::int64_t rows) {
  Instance source;
  source.DeclareRelation("R", 2);
  source.DeclareRelation("S", 2);
  for (std::int64_t k = 0; k < rows; ++k) {
    source.InsertUnchecked("R", Row(k, k % 97));
    source.InsertUnchecked("S", Row(k, k % 89));
  }
  return source;
}

// Rolling delta: insert `half` fresh keys, delete the `half` oldest live
// keys (both relations), so the instance holds `rows` keys throughout and
// every maintain does insertion AND DRed-deletion work.
mm2::runtime::Delta NextDelta(std::int64_t half, std::int64_t* next_key,
                              std::deque<std::int64_t>* live) {
  mm2::runtime::Delta delta;
  delta.inserts.DeclareRelation("R", 2);
  delta.inserts.DeclareRelation("S", 2);
  delta.deletes.DeclareRelation("R", 2);
  delta.deletes.DeclareRelation("S", 2);
  for (std::int64_t i = 0; i < half; ++i) {
    std::int64_t k = (*next_key)++;
    delta.inserts.InsertUnchecked("R", Row(k, k % 97));
    delta.inserts.InsertUnchecked("S", Row(k, k % 89));
    live->push_back(k);
  }
  for (std::int64_t i = 0; i < half && !live->empty(); ++i) {
    std::int64_t k = live->front();
    live->pop_front();
    delta.deletes.InsertUnchecked("R", Row(k, k % 97));
    delta.deletes.InsertUnchecked("S", Row(k, k % 89));
  }
  return delta;
}

void BM_Maintain(benchmark::State& state) {
  std::int64_t rows = state.range(0);
  std::int64_t permille = state.range(1);
  std::int64_t half =
      std::max<std::int64_t>(1, rows * permille / 1000 / 2);

  Mapping m = BenchMapping();
  auto begun =
      mm2::runtime::BeginExchangeSession(m, SeedSource(rows), {});
  if (!begun.ok()) {
    state.SkipWithError(begun.status().ToString().c_str());
    return;
  }
  mm2::runtime::ExchangeSession session = std::move(begun.value());
  std::int64_t next_key = rows;
  std::deque<std::int64_t> live;
  for (std::int64_t k = 0; k < rows; ++k) live.push_back(k);

  std::string point = "incremental.r" + std::to_string(rows) + ".f" +
                      std::to_string(permille);
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(point + ".maintain_us");

  std::size_t touched = 0;
  for (auto _ : state) {
    state.PauseTiming();
    mm2::runtime::Delta delta = NextDelta(half, &next_key, &live);
    state.ResumeTiming();
    auto start = std::chrono::steady_clock::now();
    auto out = mm2::runtime::MaintainExchange(session, delta);
    double us = std::chrono::duration_cast<
                    std::chrono::duration<double, std::micro>>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    wall.Record(us);
    touched += out.value().inserts.TotalTuples() +
               out.value().deletes.TotalTuples();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2 * half);
  state.counters["delta_rows"] = static_cast<double>(2 * half);
  state.counters["target_touched"] =
      state.iterations() == 0
          ? 0
          : static_cast<double>(touched) /
                static_cast<double>(state.iterations());
  state.counters["fallbacks"] = static_cast<double>(session.fallbacks);
}
BENCHMARK(BM_Maintain)
    ->ArgNames({"rows", "permille"})
    ->ArgsProduct({{kSizes[0], kSizes[1], kSizes[2]},
                   {kPermille[0], kPermille[1], kPermille[2]}})
    ->Iterations(8)
    ->Unit(benchmark::kMicrosecond);

void BM_Rechase(benchmark::State& state) {
  std::int64_t rows = state.range(0);
  Mapping m = BenchMapping();
  Instance source = SeedSource(rows);

  std::string point = "incremental.r" + std::to_string(rows);
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(point + ".rechase_us");

  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto out = mm2::runtime::Exchange(m, source, {});
    double us = std::chrono::duration_cast<
                    std::chrono::duration<double, std::micro>>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!out.ok()) {
      state.SkipWithError(out.status().ToString().c_str());
      return;
    }
    wall.Record(us);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows);
}
BENCHMARK(BM_Rechase)
    ->ArgNames({"rows"})
    ->Args({kSizes[0]})
    ->Args({kSizes[1]})
    ->Args({kSizes[2]})
    ->Iterations(8)
    ->Unit(benchmark::kMicrosecond);

// Derives re-chase p50 / maintain p50 per grid point and prints the ratios
// as extra JSON lines before the registry dump.
void ReportSpeedups() {
  mm2::obs::MetricsSnapshot snap = mm2::bench::Obs().metrics.Snapshot();
  auto p50 = [&snap](const std::string& name) -> double {
    const mm2::obs::HistogramSnapshot* h = snap.FindHistogram(name);
    return h == nullptr || h->count == 0 ? 0.0 : h->Percentile(0.5);
  };
  for (std::int64_t rows : kSizes) {
    std::string size = "incremental.r" + std::to_string(rows);
    double rechase = p50(size + ".rechase_us");
    if (rechase <= 0) continue;
    for (std::int64_t f : kPermille) {
      std::string point = size + ".f" + std::to_string(f);
      double maintain = p50(point + ".maintain_us");
      if (maintain <= 0) continue;
      mm2::bench::PrintJsonLine("incremental_bench", point + ".speedup",
                                rechase / maintain, "x");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto start = std::chrono::steady_clock::now();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  double total_us = std::chrono::duration_cast<
                        std::chrono::duration<double, std::micro>>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  mm2::bench::Obs().metrics.GetHistogram("bench.total_runtime_us")
      .Record(total_us);
  ReportSpeedups();
  mm2::bench::ReportRegistry("incremental_bench");
  return 0;
}
