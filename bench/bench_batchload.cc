// Experiment C10 (extension): the Section 5 "batch loading" ablation.
// The same first-order mapping executed two ways: tuple-at-a-time chase
// vs the compiled set-oriented plan. Expected shape: identical outputs
// (asserted), with the compiled path ahead by a growing factor as the
// source grows — the reason the runtime wants a TransGen'd loader.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "chase/chase.h"
#include "match/correspondence.h"
#include "transgen/relational.h"
#include "workload/generators.h"

namespace {

void BM_BatchLoad_Chase(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  mm2::workload::EvolutionChain chain =
      mm2::workload::MakeEvolutionChain(1, 6);
  const mm2::logic::Mapping& mapping = chain.steps[0];
  mm2::workload::Rng rng(53);
  mm2::instance::Instance db =
      mm2::workload::MakeChainInstance(chain, rows, &rng);
  for (auto _ : state) {
    auto result = mm2::chase::RunChase(mapping, db);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
}
BENCHMARK(BM_BatchLoad_Chase)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BatchLoad_Compiled(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  mm2::workload::EvolutionChain chain =
      mm2::workload::MakeEvolutionChain(1, 6);
  const mm2::logic::Mapping& mapping = chain.steps[0];
  mm2::workload::Rng rng(53);
  mm2::instance::Instance db =
      mm2::workload::MakeChainInstance(chain, rows, &rng);
  auto compiled = mm2::transgen::CompileRelationalMapping(mapping);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  // Agreement with the chase is checked once, outside the timed region.
  bool agrees = false;
  {
    auto fast = mm2::transgen::ExecuteCompiledMapping(*compiled, mapping, db);
    auto chased = mm2::chase::RunChase(mapping, db);
    agrees = fast.ok() && chased.ok() && fast->Equals(chased->target);
  }
  for (auto _ : state) {
    auto result =
        mm2::transgen::ExecuteCompiledMapping(*compiled, mapping, db);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
  state.counters["agrees_with_chase"] = agrees ? 1.0 : 0.0;
}
BENCHMARK(BM_BatchLoad_Compiled)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BatchLoad_JoinMapping_Chase(benchmark::State& state) {
  // A join-body mapping (the Fig. 4 forward constraint): chase must
  // enumerate matches; the compiled plan hash-joins.
  std::size_t facts = static_cast<std::size_t>(state.range(0));
  mm2::workload::SnowflakePair pair = mm2::workload::MakeSnowflakePair(2, 2);
  mm2::workload::Rng rng(59);
  mm2::instance::Instance db =
      mm2::workload::MakeSnowflakeInstance(pair, facts, &rng);
  auto constraints = mm2::match::InterpretCorrespondences(
      pair.source, pair.source_root, pair.target, pair.target_root,
      pair.correspondences);
  auto mapping = mm2::match::MappingFromConstraints("snow", pair.source,
                                                    pair.target, *constraints);
  for (auto _ : state) {
    auto result = mm2::chase::RunChase(*mapping, db);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * facts));
}
BENCHMARK(BM_BatchLoad_JoinMapping_Chase)->Arg(100)->Arg(400)->Arg(1600);

void BM_BatchLoad_JoinMapping_Compiled(benchmark::State& state) {
  std::size_t facts = static_cast<std::size_t>(state.range(0));
  mm2::workload::SnowflakePair pair = mm2::workload::MakeSnowflakePair(2, 2);
  mm2::workload::Rng rng(59);
  mm2::instance::Instance db =
      mm2::workload::MakeSnowflakeInstance(pair, facts, &rng);
  auto constraints = mm2::match::InterpretCorrespondences(
      pair.source, pair.source_root, pair.target, pair.target_root,
      pair.correspondences);
  auto mapping = mm2::match::MappingFromConstraints("snow", pair.source,
                                                    pair.target, *constraints);
  auto compiled = mm2::transgen::CompileRelationalMapping(*mapping);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result =
        mm2::transgen::ExecuteCompiledMapping(*compiled, *mapping, db);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * facts));
}
BENCHMARK(BM_BatchLoad_JoinMapping_Compiled)->Arg(100)->Arg(400)->Arg(1600);

}  // namespace

MM2_BENCH_MAIN("bench_batchload");
