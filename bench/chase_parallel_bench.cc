// Parallel chase executor scaling: the partitioned match phase swept over
// a (threads x chain length) grid on the same transitive-closure workload
// as chase_scaling_bench (rules = 4 copies so every round re-matches four
// rule bodies — enough candidate fan-out for the pool to bite), plus the
// sharded-build/partitioned-probe hash join over Const inputs.
//
// Each (t, n) point records a `chase_parallel.t<t>.n<n>.r4.wall_us`
// histogram; the custom main derives `chase_parallel.speedup_t<t>.n64.r4`
// (serial p50 / t-thread p50) before dumping the registry, so the speedup
// lands in BENCH_<label>.json alongside the raw walls. Every JSON line
// carries the ambient `threads` + `hw_concurrency` (bench_report.h), and
// bench_compare.py refuses to diff across differing thread counts — on a
// single-core box the speedup is expected to sit near (or below) 1x and
// that is not a regression.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_report.h"

#include "algebra/eval.h"
#include "algebra/expr.h"
#include "chase/chase.h"
#include "instance/instance.h"
#include "logic/formula.h"

namespace {

using mm2::instance::Instance;
using mm2::instance::Value;
using mm2::logic::Atom;
using mm2::logic::Term;
using mm2::logic::Tgd;

Term V(const std::string& name) { return Term::Var(name); }

constexpr std::int64_t kRules = 4;

std::vector<Tgd> ClosureRules(std::int64_t copies) {
  std::vector<Tgd> tgds;
  for (std::int64_t k = 0; k < copies; ++k) {
    std::string t = "T" + std::to_string(k);
    Tgd copy;
    copy.body = {Atom{"R", {V("x"), V("y")}}};
    copy.head = {Atom{t, {V("x"), V("y")}}};
    Tgd step;
    step.body = {Atom{t, {V("x"), V("y")}}, Atom{"R", {V("y"), V("z")}}};
    step.head = {Atom{t, {V("x"), V("z")}}};
    tgds.push_back(std::move(copy));
    tgds.push_back(std::move(step));
  }
  return tgds;
}

Instance ChainInstance(std::int64_t n, std::int64_t copies) {
  Instance db;
  db.DeclareRelation("R", 2);
  for (std::int64_t k = 0; k < copies; ++k) {
    db.DeclareRelation("T" + std::to_string(k), 2);
  }
  for (std::int64_t i = 0; i < n; ++i) {
    db.InsertUnchecked("R", {Value::Int64(i), Value::Int64(i + 1)});
  }
  return db;
}

void BM_ChaseParallel(benchmark::State& state) {
  std::int64_t threads = state.range(0);
  std::int64_t n = state.range(1);
  std::vector<Tgd> tgds = ClosureRules(kRules);
  Instance db = ChainInstance(n, kRules);
  mm2::chase::ChaseOptions options;  // semi-naive default
  options.threads = static_cast<std::size_t>(threads);

  std::string point = "chase_parallel.t" + std::to_string(threads) + ".n" +
                      std::to_string(n) + ".r" + std::to_string(kRules);
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(point + ".wall_us");

  std::size_t closure = 0;
  mm2::chase::ChaseStats stats;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto result = mm2::chase::ChaseInstance(tgds, {}, db, options);
    double us = std::chrono::duration_cast<
                    std::chrono::duration<double, std::micro>>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    wall.Record(us);
    closure = result->target.Find("T0")->size();
    stats = result->stats;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * n * kRules);
  state.counters["closure_edges"] = static_cast<double>(closure);
  state.counters["workers"] = static_cast<double>(stats.workers);
  state.counters["parallel_regions"] =
      static_cast<double>(stats.parallel_regions);
  state.counters["parallel_tasks"] = static_cast<double>(stats.parallel_tasks);
  state.counters["steals"] = static_cast<double>(stats.parallel_steals);
}
BENCHMARK(BM_ChaseParallel)
    ->ArgNames({"threads", "n"})
    ->ArgsProduct({{1, 2, 4, 8}, {16, 32, 64}})
    ->Unit(benchmark::kMillisecond);

// Generic hash join, serial vs parallel: Const children on both sides keep
// the evaluator off the scan-probe fast path, so this times exactly the
// sharded-build + partitioned-probe code.
void BM_ParallelJoin(benchmark::State& state) {
  std::int64_t threads = state.range(0);
  std::int64_t rows = state.range(1);
  std::vector<mm2::instance::Tuple> left_rows, right_rows;
  for (std::int64_t i = 0; i < rows; ++i) {
    left_rows.push_back({Value::Int64(i % 97), Value::Int64(i)});
    right_rows.push_back({Value::Int64(i % 89), Value::Int64(-i)});
  }
  mm2::algebra::ExprRef left =
      mm2::algebra::Expr::Const({"k", "a"}, std::move(left_rows));
  mm2::algebra::ExprRef right =
      mm2::algebra::Expr::Const({"rk", "b"}, std::move(right_rows));
  mm2::algebra::ExprRef join = mm2::algebra::Expr::Join(
      left, right, mm2::algebra::Expr::JoinKind::kInner, {{"k", "rk"}});
  mm2::algebra::Catalog cat;
  Instance db;
  mm2::algebra::EvalOptions options;
  options.threads = static_cast<std::size_t>(threads);
  options.min_parallel_rows = 1;  // always exercise the parallel path

  std::string point = "parallel_join.t" + std::to_string(threads) + ".rows" +
                      std::to_string(rows);
  auto& wall = mm2::bench::Obs().metrics.GetHistogram(point + ".wall_us");

  std::size_t out_rows = 0;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    auto table = mm2::algebra::Evaluate(*join, cat, db, options);
    double us = std::chrono::duration_cast<
                    std::chrono::duration<double, std::micro>>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!table.ok()) {
      state.SkipWithError(table.status().ToString().c_str());
      return;
    }
    wall.Record(us);
    out_rows = table->rows.size();
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * rows);
  state.counters["out_rows"] = static_cast<double>(out_rows);
}
BENCHMARK(BM_ParallelJoin)
    ->ArgNames({"threads", "rows"})
    ->ArgsProduct({{1, 2, 4}, {4096, 16384}})
    ->Unit(benchmark::kMillisecond);

// Derives serial/parallel p50 ratios from the recorded walls and prints
// them as extra JSON lines. Runs after the benchmark loop, before the
// registry dump (the ratio itself is stateless, so ordering only matters
// for readability of the output).
void ReportSpeedups() {
  mm2::obs::MetricsSnapshot snap = mm2::bench::Obs().metrics.Snapshot();
  auto p50 = [&snap](const std::string& name) -> double {
    const mm2::obs::HistogramSnapshot* h = snap.FindHistogram(name);
    return h == nullptr || h->count == 0 ? 0.0 : h->Percentile(0.5);
  };
  for (std::int64_t n : {16, 32, 64}) {
    std::string suffix =
        ".n" + std::to_string(n) + ".r" + std::to_string(kRules);
    double serial = p50("chase_parallel.t1" + suffix + ".wall_us");
    if (serial <= 0) continue;
    for (std::int64_t t : {2, 4, 8}) {
      double parallel =
          p50("chase_parallel.t" + std::to_string(t) + suffix + ".wall_us");
      if (parallel <= 0) continue;
      mm2::bench::PrintJsonLine(
          "chase_parallel_bench",
          "chase_parallel.speedup_t" + std::to_string(t) + suffix,
          serial / parallel, "x");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto start = std::chrono::steady_clock::now();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  double total_us = std::chrono::duration_cast<
                        std::chrono::duration<double, std::micro>>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  mm2::bench::Obs().metrics.GetHistogram("bench.total_runtime_us")
      .Record(total_us);
  ReportSpeedups();
  mm2::bench::ReportRegistry("chase_parallel_bench");
  return 0;
}
