// Experiment C5: Section 6.2 — Extract/Diff as view complement. Builds a
// projection mapping over schemas of growing size, computes extract and
// complement, and verifies extract JOIN diff reconstructs the source
// losslessly. Expected shape: operator cost linear in schema size;
// reconstruction exact whenever keys participate.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "diff/diff.h"
#include "logic/formula.h"
#include "workload/generators.h"

namespace {

using mm2::logic::Atom;
using mm2::logic::Mapping;
using mm2::logic::Term;
using mm2::logic::Tgd;

// A mapping carrying the key and the first half of every relation's
// attributes into a same-shaped target.
Mapping HalfProjection(const mm2::model::Schema& source) {
  mm2::model::Schema target("Half", mm2::model::Metamodel::kRelational);
  std::vector<Tgd> tgds;
  for (const mm2::model::Relation& r : source.relations()) {
    std::size_t keep = r.arity() / 2 + 1;
    std::vector<mm2::model::Attribute> attrs(
        r.attributes().begin(),
        r.attributes().begin() + static_cast<std::ptrdiff_t>(keep));
    target.AddRelation(
        mm2::model::Relation(r.name() + "_half", attrs, r.primary_key()));
    Tgd tgd;
    Atom body;
    body.relation = r.name();
    for (std::size_t i = 0; i < r.arity(); ++i) {
      body.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    Atom head;
    head.relation = r.name() + "_half";
    for (std::size_t i = 0; i < keep; ++i) {
      head.terms.push_back(Term::Var("x" + std::to_string(i)));
    }
    tgd.body = {std::move(body)};
    tgd.head = {std::move(head)};
    tgds.push_back(std::move(tgd));
  }
  return Mapping::FromTgds("half", source, target, std::move(tgds));
}

void BM_Diff_Operators(benchmark::State& state) {
  std::size_t relations = static_cast<std::size_t>(state.range(0));
  mm2::workload::Rng rng(23);
  mm2::model::Schema source = mm2::workload::RandomRelationalSchema(
      "Src", relations, 6, &rng);
  Mapping mapping = HalfProjection(source);

  std::size_t extract_elements = 0;
  std::size_t diff_elements = 0;
  for (auto _ : state) {
    auto extract = mm2::diff::Extract(mapping);
    auto complement = mm2::diff::Diff(mapping);
    if (!extract.ok() || !complement.ok()) {
      state.SkipWithError("operator failed");
      return;
    }
    extract_elements = extract->kept_elements.size();
    diff_elements = complement->kept_elements.size();
    benchmark::DoNotOptimize(extract);
    benchmark::DoNotOptimize(complement);
  }
  state.counters["extract_elements"] =
      static_cast<double>(extract_elements);
  state.counters["diff_elements"] = static_cast<double>(diff_elements);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * relations));
}
BENCHMARK(BM_Diff_Operators)->Arg(2)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_Diff_LosslessReconstruction(benchmark::State& state) {
  std::size_t rows = static_cast<std::size_t>(state.range(0));
  mm2::workload::Rng rng(29);
  mm2::model::Schema source =
      mm2::workload::RandomRelationalSchema("Src", 4, 6, &rng);
  Mapping mapping = HalfProjection(source);
  mm2::instance::Instance db =
      mm2::workload::RandomInstance(source, rows, &rng);

  auto extract = mm2::diff::Extract(mapping);
  auto complement = mm2::diff::Diff(mapping);
  if (!extract.ok() || !complement.ok()) {
    state.SkipWithError("operator failed");
    return;
  }

  bool lossless = false;
  for (auto _ : state) {
    auto extract_data = mm2::diff::Apply(*extract, db);
    auto diff_data = mm2::diff::Apply(*complement, db);
    if (!extract_data.ok() || !diff_data.ok()) {
      state.SkipWithError("apply failed");
      return;
    }
    auto rebuilt = mm2::diff::Reconstruct(source, *extract, *extract_data,
                                          *complement, *diff_data);
    if (!rebuilt.ok()) {
      state.SkipWithError(rebuilt.status().ToString().c_str());
      return;
    }
    lossless = rebuilt->Equals(db);
    benchmark::DoNotOptimize(rebuilt);
  }
  state.counters["lossless"] = lossless ? 1.0 : 0.0;
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
}
BENCHMARK(BM_Diff_LosslessReconstruction)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000);

}  // namespace

MM2_BENCH_MAIN("bench_diff");
