// Wrapper generation: the paper's Fig. 2 / Fig. 3 scenario end to end.
//
// An ER hierarchy (Person <- Employee, Person <- Customer) is mapped to the
// HR/Empl/Client tables through three declarative mapping fragments —
// exactly Fig. 2's constraints. TransGen compiles them into:
//   - a query view (Fig. 3's CASE/UNION query) that reconstructs typed
//     entities from the tables, and
//   - update views that shred entity updates back onto the tables.
// The runtime then propagates object-at-a-time updates and translates a
// table-level error into entity terms (Section 5).
//
// Build & run:  ./build/examples/wrapper_generation
#include <iostream>

#include "instance/instance.h"
#include "model/schema.h"
#include "modelgen/modelgen.h"
#include "runtime/runtime.h"
#include "transgen/transgen.h"

using mm2::instance::Instance;
using mm2::instance::Value;
using mm2::model::DataType;

namespace {

int Fail(const mm2::Status& status) {
  std::cerr << "error: " << status << std::endl;
  return 1;
}

}  // namespace

int main() {
  // The Fig. 2 ER schema.
  mm2::model::Schema er =
      mm2::model::SchemaBuilder("ER",
                                mm2::model::Metamodel::kEntityRelationship)
          .EntityType("Person", "",
                      {{"Id", DataType::Int64()}, {"Name", DataType::String()}})
          .EntityType("Employee", "Person", {{"Dept", DataType::String()}})
          .EntityType("Customer", "Person",
                      {{"CreditScore", DataType::Int64()},
                       {"BillingAddr", DataType::String()}})
          .EntitySet("Persons", "Person")
          .Build();

  // The Fig. 2 relational schema.
  mm2::model::Schema sql =
      mm2::model::SchemaBuilder("SQL", mm2::model::Metamodel::kRelational)
          .Relation("HR", {{"Id", DataType::Int64()},
                           {"Name", DataType::String()}},
                    {"Id"})
          .Relation("Empl", {{"Id", DataType::Int64()},
                             {"Dept", DataType::String()}},
                    {"Id"})
          .Relation("Client", {{"Id", DataType::Int64()},
                               {"Name", DataType::String()},
                               {"Score", DataType::Int64()},
                               {"Addr", DataType::String()}},
                    {"Id"})
          .Build();

  // Fig. 2's three constraints as mapping fragments.
  std::vector<mm2::modelgen::MappingFragment> fragments = {
      {"Persons", {"Person", "Employee"}, "HR",
       {{"Id", "Id"}, {"Name", "Name"}}, ""},
      {"Persons", {"Employee"}, "Empl", {{"Id", "Id"}, {"Dept", "Dept"}}, ""},
      {"Persons",
       {"Customer"},
       "Client",
       {{"Id", "Id"}, {"Name", "Name"}, {"CreditScore", "Score"},
        {"BillingAddr", "Addr"}},
       ""},
  };
  std::cout << "mapping fragments (Fig. 2):\n";
  for (const auto& f : fragments) std::cout << "  " << f.ToString() << "\n";

  // TransGen: compile to executable views.
  mm2::transgen::TransGenStats stats;
  auto views =
      mm2::transgen::CompileFragments(er, "Persons", sql, fragments, &stats);
  if (!views.ok()) return Fail(views.status());
  std::cout << "\ncompiled views (cf. Fig. 3): " << stats.components
            << " union branches, " << stats.outer_joins << " outer join(s), "
            << stats.case_branches << " CASE branches\n\n"
            << views->ToString() << "\n";

  // Populate the object side and push it down through the update views.
  Instance entities = Instance::EmptyFor(er);
  auto layout = mm2::instance::ComputeEntitySetLayout(
      er, *er.FindEntitySet("Persons"));
  if (!layout.ok()) return Fail(layout.status());
  auto add = [&](const char* type, std::vector<Value> attrs) -> mm2::Status {
    auto tuple = mm2::instance::MakeEntityTuple(*layout, er, type, attrs);
    MM2_RETURN_IF_ERROR(tuple.status());
    return entities.Insert("Persons", *tuple);
  };
  if (mm2::Status s = add("Person", {Value::Int64(1), Value::String("Ada")});
      !s.ok()) {
    return Fail(s);
  }
  (void)add("Employee",
            {Value::Int64(2), Value::String("Bob"), Value::String("R&D")});
  (void)add("Customer", {Value::Int64(3), Value::String("Cyd"),
                         Value::Int64(700), Value::String("12 Oak")});

  mm2::runtime::UpdatePropagator propagator(*views, fragments, er, sql);
  if (mm2::Status s = propagator.Initialize(entities); !s.ok()) return Fail(s);
  std::cout << "initial tables:\n" << propagator.tables().ToString() << "\n";

  // Subscribe to table notifications, then apply an object-level insert.
  propagator.Subscribe([](const std::string& table,
                          const mm2::runtime::Delta& delta) {
    std::cout << "notification for " << table << ":\n" << delta.ToString();
  });
  mm2::runtime::EntityOp hire;
  hire.kind = mm2::runtime::EntityOp::Kind::kInsert;
  auto dana = mm2::instance::MakeEntityTuple(
      *layout, er, "Employee",
      {Value::Int64(4), Value::String("Dana"), Value::String("Sales")});
  if (!dana.ok()) return Fail(dana.status());
  hire.entity = *dana;
  std::cout << "hiring Dana (entity-level insert)...\n";
  auto deltas = propagator.Apply(hire);
  if (!deltas.ok()) return Fail(deltas.status());

  // Roundtripping check (the ADO.NET losslessness criterion).
  auto roundtrips =
      mm2::transgen::VerifyRoundtrip(*views, er, sql, propagator.entities());
  if (!roundtrips.ok()) return Fail(roundtrips.status());
  std::cout << "\nroundtripping holds: " << (*roundtrips ? "yes" : "NO")
            << "\n";

  // Error translation: a table error surfaces in entity terms.
  mm2::runtime::ErrorTranslator translator(fragments);
  std::cout << "\ntranslated error:\n  "
            << translator.Translate("Empl", "Dept",
                                    "value exceeds column width")
            << "\n";
  return 0;
}
