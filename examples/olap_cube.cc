// OLAP: the paper's "OLAP databases, which map data sources into data
// cubes" usage scenario. An OLTP snowflake is loaded into a flat warehouse
// table through an engineered mapping (compiled to a set-oriented loader,
// the Section 5 batch-loading path), then rolled up with grouped
// aggregation.
//
// Build & run:  ./build/examples/olap_cube
#include <iostream>

#include "algebra/eval.h"
#include "algebra/optimize.h"
#include "logic/formula.h"
#include "model/schema.h"
#include "transgen/relational.h"

using mm2::instance::Instance;
using mm2::instance::Value;
using mm2::logic::Atom;
using mm2::logic::Term;
using mm2::model::DataType;

namespace {

int Fail(const mm2::Status& status) {
  std::cerr << "error: " << status << std::endl;
  return 1;
}

mm2::logic::Term V(const char* name) { return Term::Var(name); }

}  // namespace

int main() {
  // OLTP side: orders referencing a product dimension.
  mm2::model::Schema oltp =
      mm2::model::SchemaBuilder("OLTP", mm2::model::Metamodel::kRelational)
          .Relation("Orders", {{"OrderId", DataType::Int64()},
                               {"ProductId", DataType::Int64()},
                               {"Qty", DataType::Int64()},
                               {"Price", DataType::Double()}},
                    {"OrderId"})
          .Relation("Products", {{"ProductId", DataType::Int64()},
                                 {"Name", DataType::String()},
                                 {"Category", DataType::String()}},
                    {"ProductId"})
          .ForeignKey("Orders", {"ProductId"}, "Products", {"ProductId"})
          .Build();
  // Warehouse side: one flat fact table.
  mm2::model::Schema warehouse =
      mm2::model::SchemaBuilder("DW", mm2::model::Metamodel::kRelational)
          .Relation("Fact", {{"OrderId", DataType::Int64()},
                             {"Category", DataType::String()},
                             {"Qty", DataType::Int64()},
                             {"Price", DataType::Double()}},
                    {"OrderId"})
          .Build();

  // The engineered ETL mapping: Fact rows join Orders with Products.
  mm2::logic::Tgd etl;
  etl.body = {Atom{"Orders", {V("o"), V("p"), V("q"), V("pr")}},
              Atom{"Products", {V("p"), V("n"), V("c")}}};
  etl.head = {Atom{"Fact", {V("o"), V("c"), V("q"), V("pr")}}};
  mm2::logic::Mapping mapping =
      mm2::logic::Mapping::FromTgds("etl", oltp, warehouse, {etl});
  std::cout << mapping.ToString() << "\n\n";

  // Compile to a batch loader and print its SQL.
  auto compiled = mm2::transgen::CompileRelationalMapping(mapping);
  if (!compiled.ok()) return Fail(compiled.status());
  std::cout << compiled->ToString() << "\n";

  // OLTP data.
  Instance db = Instance::EmptyFor(oltp);
  auto order = [&](int id, int product, int qty, double price) {
    (void)db.Insert("Orders", {Value::Int64(id), Value::Int64(product),
                               Value::Int64(qty), Value::Double(price)});
  };
  (void)db.Insert("Products", {Value::Int64(1), Value::String("widget"),
                               Value::String("tools")});
  (void)db.Insert("Products", {Value::Int64(2), Value::String("gadget"),
                               Value::String("tools")});
  (void)db.Insert("Products", {Value::Int64(3), Value::String("manual"),
                               Value::String("books")});
  order(100, 1, 2, 9.5);
  order(101, 2, 1, 24.0);
  order(102, 3, 5, 7.0);
  order(103, 1, 1, 9.5);

  // Load.
  auto loaded = mm2::transgen::ExecuteCompiledMapping(*compiled, mapping, db);
  if (!loaded.ok()) return Fail(loaded.status());
  std::cout << "warehouse:\n" << loaded->ToString() << "\n";

  // Roll up: revenue and volume per category. (Revenue uses Qty*Price —
  // approximated here as SUM over Price with COUNT/SUM of Qty since the
  // algebra has no arithmetic projection; the cube shape is the point.)
  mm2::algebra::ExprRef cube = mm2::algebra::Expr::Aggregate(
      mm2::algebra::Expr::Scan("Fact"), {"Category"},
      {{mm2::algebra::Expr::AggOp::kCount, "", "Orders"},
       {mm2::algebra::Expr::AggOp::kSum, "Qty", "Units"},
       {mm2::algebra::Expr::AggOp::kAvg, "Price", "AvgPrice"},
       {mm2::algebra::Expr::AggOp::kMax, "Price", "TopPrice"}});
  cube = mm2::algebra::Simplify(cube);
  std::cout << "cube query:\n" << cube->ToSql() << "\n\n";

  auto catalog = mm2::algebra::Catalog::FromSchema(warehouse);
  if (!catalog.ok()) return Fail(catalog.status());
  auto result = mm2::algebra::Evaluate(*cube, *catalog, *loaded);
  if (!result.ok()) return Fail(result.status());
  std::cout << "category roll-up:\n" << result->ToString();
  return 0;
}
