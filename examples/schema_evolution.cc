// Schema evolution: the paper's Fig. 5 / Fig. 6 scenario.
//
// A view V (Students) is defined over schema S (Names, Addresses). S then
// evolves into S' by splitting Addresses into Local/Foreign. The engine:
//   1. expresses the change as mapping mapS-S';
//   2. migrates the database D to D' by data exchange;
//   3. rewires the view by composing mapV-S with mapS-S' (Compose);
//   4. uses Invert + Diff to find what S' added beyond S;
//   5. checks the composed mapping still reproduces the Students view.
//
// Build & run:  ./build/examples/schema_evolution
#include <iostream>

#include "chase/chase.h"
#include "compose/compose.h"
#include "diff/diff.h"
#include "engine/engine.h"
#include "inverse/inverse.h"
#include "logic/formula.h"
#include "model/schema.h"

using mm2::instance::Instance;
using mm2::instance::Value;
using mm2::logic::Atom;
using mm2::logic::Mapping;
using mm2::logic::Term;
using mm2::logic::Tgd;
using mm2::model::DataType;

namespace {

Term V(const char* name) { return Term::Var(name); }
Term C(const char* s) { return Term::Const(Value::String(s)); }

int Fail(const mm2::Status& status) {
  std::cerr << "error: " << status << std::endl;
  return 1;
}

}  // namespace

int main() {
  // --- Schemas (Fig. 6) -----------------------------------------------------
  mm2::model::Schema v =
      mm2::model::SchemaBuilder("V", mm2::model::Metamodel::kRelational)
          .Relation("Students", {{"Name", DataType::String()},
                                 {"Address", DataType::String()},
                                 {"Country", DataType::String()}})
          .Build();
  mm2::model::Schema s =
      mm2::model::SchemaBuilder("S", mm2::model::Metamodel::kRelational)
          .Relation("Names", {{"SID", DataType::Int64()},
                              {"Name", DataType::String()}},
                    {"SID"})
          .Relation("Addresses", {{"SID", DataType::Int64()},
                                  {"Address", DataType::String()},
                                  {"Country", DataType::String()}},
                    {"SID"})
          .Build();
  mm2::model::Schema sp =
      mm2::model::SchemaBuilder("Sprime", mm2::model::Metamodel::kRelational)
          .Relation("NamesP", {{"SID", DataType::Int64()},
                               {"Name", DataType::String()}},
                    {"SID"})
          .Relation("Local", {{"SID", DataType::Int64()},
                              {"Address", DataType::String()}},
                    {"SID"})
          .Relation("Foreign", {{"SID", DataType::Int64()},
                                {"Address", DataType::String()},
                                {"Country", DataType::String()}},
                    {"SID"})
          // S' also adds a brand-new Phone relation the old schema never
          // carried — Diff should single it out below.
          .Relation("Phone", {{"SID", DataType::Int64()},
                              {"Number", DataType::String()}},
                    {"SID"})
          .Build();

  // mapV-S: Students(n,a,c) -> exists sid. Names(sid,n) & Addresses(sid,a,c).
  Tgd view_def;
  view_def.body = {Atom{"Students", {V("n"), V("a"), V("c")}}};
  view_def.head = {Atom{"Names", {V("sid"), V("n")}},
                   Atom{"Addresses", {V("sid"), V("a"), V("c")}}};
  Mapping map_v_s = Mapping::FromTgds("mapVS", v, s, {view_def});

  // mapS-S' (Fig. 6): Names = NamesP; US rows -> Local; rows -> Foreign.
  Tgd names;
  names.body = {Atom{"Names", {V("sid"), V("n")}}};
  names.head = {Atom{"NamesP", {V("sid"), V("n")}}};
  Tgd local;
  local.body = {Atom{"Addresses", {V("sid"), V("a"), C("US")}}};
  local.head = {Atom{"Local", {V("sid"), V("a")}}};
  Tgd foreign;
  foreign.body = {Atom{"Addresses", {V("sid"), V("a"), V("c")}}};
  foreign.head = {Atom{"Foreign", {V("sid"), V("a"), V("c")}}};
  Mapping map_s_sp =
      Mapping::FromTgds("mapSSp", s, sp, {names, local, foreign});
  std::cout << map_v_s.ToString() << "\n\n" << map_s_sp.ToString() << "\n\n";

  // --- Register everything with the engine and run the evolution script ----
  mm2::engine::Engine engine;
  for (const mm2::model::Schema& schema : {v, s, sp}) {
    if (mm2::Status st = engine.repo().PutSchema(schema); !st.ok()) {
      return Fail(st);
    }
  }
  (void)engine.repo().PutMapping(map_v_s);
  (void)engine.repo().PutMapping(map_s_sp);

  Instance d = Instance::EmptyFor(s);
  (void)d.Insert("Names", {Value::Int64(1), Value::String("Ada")});
  (void)d.Insert("Names", {Value::Int64(2), Value::String("Bob")});
  (void)d.Insert("Addresses", {Value::Int64(1), Value::String("12 Oak"),
                               Value::String("US")});
  (void)d.Insert("Addresses", {Value::Int64(2), Value::String("5 Rue"),
                               Value::String("FR")});
  (void)engine.repo().PutInstance("D", d);

  const char* script = R"(
# Fig. 5: migrate D to D', rewire the view by composition
exchange Dprime mapSSp D
compose mapVSp mapVS mapSSp
# find what S' exposes beyond what V reaches: invert then diff
invert mapSpS mapSSp
diff NewParts newPartsMap mapSpS
)";
  auto log = engine.RunScript(script);
  if (!log.ok()) return Fail(log.status());
  for (const std::string& line : *log) std::cout << line << "\n";

  auto dprime = engine.repo().GetInstance("Dprime");
  if (!dprime.ok()) return Fail(dprime.status());
  std::cout << "\nmigrated database D':\n" << dprime->ToString() << "\n";

  auto composed = engine.repo().GetMapping("mapVSp");
  if (!composed.ok()) return Fail(composed.status());
  std::cout << "composed mapping mapV-S' (second-order: "
            << (composed->is_second_order() ? "yes" : "no") << "):\n"
            << composed->ToString() << "\n\n";

  // --- Check: the composed mapping reproduces the Students view ------------
  Instance students;
  students.DeclareRelation("Students", 3);
  (void)students.Insert("Students", {Value::String("Ada"),
                                     Value::String("12 Oak"),
                                     Value::String("US")});
  (void)students.Insert("Students", {Value::String("Bob"),
                                     Value::String("5 Rue"),
                                     Value::String("FR")});
  auto through_composed = mm2::chase::RunChase(*composed, students);
  if (!through_composed.ok()) return Fail(through_composed.status());

  // Read the view back: Students = pi(NamesP JOIN (Local x {US} U Foreign)).
  mm2::logic::ConjunctiveQuery local_side;
  local_side.head = Atom{"Q", {V("n"), V("a"), C("US")}};
  local_side.body = {Atom{"NamesP", {V("sid"), V("n")}},
                     Atom{"Local", {V("sid"), V("a")}}};
  mm2::logic::ConjunctiveQuery foreign_side;
  foreign_side.head = Atom{"Q", {V("n"), V("a"), V("c")}};
  foreign_side.body = {Atom{"NamesP", {V("sid"), V("n")}},
                       Atom{"Foreign", {V("sid"), V("a"), V("c")}}};
  auto l = mm2::chase::CertainAnswers(local_side, through_composed->target);
  auto f = mm2::chase::CertainAnswers(foreign_side, through_composed->target);
  if (!l.ok() || !f.ok()) return Fail(l.ok() ? f.status() : l.status());
  std::cout << "view read back through composed mapping:\n";
  std::set<mm2::instance::Tuple> rows(l->begin(), l->end());
  rows.insert(f->begin(), f->end());
  for (const auto& row : rows) {
    std::cout << "  " << mm2::instance::TupleToString(row) << "\n";
  }
  std::cout << "matches original Students: "
            << (rows.size() == 2 ? "yes" : "NO") << "\n";

  // --- The new parts of S' --------------------------------------------------
  auto new_parts = engine.repo().GetSchema("NewParts");
  if (!new_parts.ok()) return Fail(new_parts.status());
  std::cout << "\nnew parts of S' (Diff):\n" << new_parts->ToString() << "\n";
  return 0;
}
