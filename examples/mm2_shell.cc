// mm2_shell: an interactive front end for the model management engine —
// the "reusable component embedded in a tool" of the paper's Section 2,
// with a terminal instead of a GUI. Reads commands from stdin (or a file
// piped in); schemas and instances travel in the S-expression text format.
//
// Commands:
//   load-schema <file>                 parse + register a schema
//   load-instance <name> <file>        parse + register an instance
//   save-instance <name> <file>        write an instance to a file
//   show schemas|mappings|instances    list repository contents
//   show schema|mapping|instance <n>   print one artifact
//   sql <mapping>                      print compiled loader SQL
//   <any engine script command>        compose/invert/inverse/extract/
//                                      diff/merge/modelgen/exchange/match/
//                                      stats/explain
//   help, quit
//
// Environment (observability without editing the session script):
//   MM2_TRACE=<file>   enable tracing from startup; Chrome trace_event
//                      JSON is written to <file> on quit
//   MM2_STATS=1        dump the metrics registry snapshot on quit
//   MM2_LOG=json|text  structured event log to stderr from startup (the
//                      engine applies this when it creates its context)
//
// Try:  ./build/examples/mm2_shell < examples/data/demo_session.mm2
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/strings.h"
#include "engine/engine.h"
#include "rewrite/rewrite.h"
#include "text/query.h"
#include "text/sexpr.h"
#include "transgen/relational.h"

namespace {

mm2::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return mm2::Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void PrintHelp() {
  std::cout <<
      "commands:\n"
      "  load-schema <file>            register a schema from s-expr text\n"
      "  load-instance <name> <file>   register an instance\n"
      "  load-mapping <file>           register a mapping (s-expr text)\n"
      "  save-instance <name> <file>   write an instance to a file\n"
      "  show schemas|mappings|instances\n"
      "  show schema|mapping|instance <name>\n"
      "  sql <mapping>                 compiled loader SQL for a mapping\n"
      "  answer <m> <inst> <query>     certain answers via rewriting, e.g.\n"
      "                                answer m D Q(x) :- T(x, y)\n"
      "  compose <out> <m12> <m23>     (and the other engine commands:\n"
      "  invert/inverse/extract/diff/merge/modelgen/exchange/match)\n"
      "  threads <n>                   worker threads for chase-backed\n"
      "                                commands (0 = MM2_THREADS env);\n"
      "                                pool metrics land in stats/explain\n"
      "  storage indexed|segmented     chase storage representation (or\n"
      "                                start with MM2_STORAGE=segmented);\n"
      "                                results bit-identical; segment\n"
      "                                metrics land in stats/explain\n"
      "  stats [--json]                dump the metrics registry\n"
      "  explain [--json]              ranked cost report (operators,\n"
      "                                chase rules, strata, span phases)\n"
      "  explain mapping <m> [--json|--dot]\n"
      "                                static analysis: dependency strata,\n"
      "                                termination class, chase bounds\n"
      "  trace <file>                  record spans; Chrome JSON on quit\n"
      "                                (or start with MM2_TRACE=<file>;\n"
      "                                MM2_STATS=1 dumps stats on quit)\n"
      "  log off|text|json [file]      structured event log + flight\n"
      "                                recorder (default sink stderr; or\n"
      "                                start with MM2_LOG=json|text)\n"
      "  log level debug|info|warn|error\n"
      "                                drop events below the threshold\n"
      "                                (or start with MM2_LOG_LEVEL=warn)\n"
      "  budget tuples|wall_us|rss_kb <n>  soft chase budgets; on breach\n"
      "                                exchange stops gracefully with a\n"
      "                                diagnostic (budget off: clear)\n"
      "  why <Rel(v1,v2,...)>          why-provenance of a target fact\n"
      "                                from the last exchange\n"
      "  help | quit\n";
}

}  // namespace

int main() {
  mm2::engine::Engine engine;
  std::string line;
  // RunScript scopes `trace` to one script, but the shell feeds it one
  // line at a time — so intercept trace here and flush at session end.
  std::string trace_file;
  // MM2_TRACE/MM2_STATS arm the same session-end reporting from the
  // environment, so piped scripts need no observability commands at all.
  if (const char* env_trace = std::getenv("MM2_TRACE");
      env_trace != nullptr && env_trace[0] != '\0') {
    engine.observability().tracer.Enable();
    trace_file = env_trace;
  }
  const char* env_stats = std::getenv("MM2_STATS");
  bool stats_on_quit =
      env_stats != nullptr && std::string(env_stats) != "0" &&
      env_stats[0] != '\0';
  // MM2_STORAGE picks the chase storage representation for the session;
  // the `storage` command overrides it per-session.
  engine.SetStorageMode(
      mm2::instance::ResolveStorageMode(mm2::instance::StorageMode::kDefault));
  std::cout << "mm2 shell — 'help' for commands\n";
  while (std::cout << "mm2> " << std::flush, std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::vector<std::string> tokens;
    std::string word;
    while (words >> word) tokens.push_back(word);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& cmd = tokens[0];

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "trace" && tokens.size() == 2) {
      engine.observability().tracer.Enable();
      trace_file = tokens[1];
      std::cout << "tracing to " << trace_file << " (written on quit)\n";
      continue;
    }
    if (cmd == "help") {
      PrintHelp();
      continue;
    }
    if (cmd == "load-schema" && tokens.size() == 2) {
      auto content = ReadFile(tokens[1]);
      if (!content.ok()) {
        std::cout << content.status() << "\n";
        continue;
      }
      auto schema = mm2::text::ParseSchema(*content);
      if (!schema.ok()) {
        std::cout << schema.status() << "\n";
        continue;
      }
      std::string name = schema->name();
      mm2::Status status = engine.repo().PutSchema(std::move(*schema));
      std::cout << (status.ok() ? "loaded schema " + name
                                : status.ToString())
                << "\n";
      continue;
    }
    if (cmd == "load-mapping" && tokens.size() == 2) {
      auto content = ReadFile(tokens[1]);
      if (!content.ok()) {
        std::cout << content.status() << "\n";
        continue;
      }
      auto mapping = mm2::text::ParseMapping(*content);
      if (!mapping.ok()) {
        std::cout << mapping.status() << "\n";
        continue;
      }
      std::string name = mapping->name();
      mm2::Status status = engine.repo().PutMapping(std::move(*mapping));
      std::cout << (status.ok() ? "loaded mapping " + name
                                : status.ToString())
                << "\n";
      continue;
    }
    if (cmd == "load-instance" && tokens.size() == 3) {
      auto content = ReadFile(tokens[2]);
      if (!content.ok()) {
        std::cout << content.status() << "\n";
        continue;
      }
      auto db = mm2::text::ParseInstance(*content);
      if (!db.ok()) {
        std::cout << db.status() << "\n";
        continue;
      }
      mm2::Status status =
          engine.repo().PutInstance(tokens[1], std::move(*db));
      std::cout << (status.ok() ? "loaded instance " + tokens[1]
                                : status.ToString())
                << "\n";
      continue;
    }
    if (cmd == "save-instance" && tokens.size() == 3) {
      auto db = engine.repo().GetInstance(tokens[1]);
      if (!db.ok()) {
        std::cout << db.status() << "\n";
        continue;
      }
      std::ofstream out(tokens[2]);
      if (!out) {
        std::cout << "cannot write '" << tokens[2] << "'\n";
        continue;
      }
      out << mm2::text::InstanceToText(*db);
      std::cout << "saved " << tokens[1] << " to " << tokens[2] << "\n";
      continue;
    }
    if (cmd == "show" && tokens.size() >= 2) {
      const std::string& what = tokens[1];
      auto join = [](const std::vector<std::string>& names) {
        return names.empty() ? std::string("(none)")
                             : mm2::Join(names, ", ");
      };
      if (what == "schemas") {
        std::cout << join(engine.repo().SchemaNames()) << "\n";
      } else if (what == "mappings") {
        std::cout << join(engine.repo().MappingNames()) << "\n";
      } else if (what == "instances") {
        std::cout << join(engine.repo().InstanceNames()) << "\n";
      } else if (what == "schema" && tokens.size() == 3) {
        auto schema = engine.repo().GetSchema(tokens[2]);
        std::cout << (schema.ok() ? schema->ToString()
                                  : schema.status().ToString())
                  << "\n";
      } else if (what == "mapping" && tokens.size() == 3) {
        auto mapping = engine.repo().GetMapping(tokens[2]);
        std::cout << (mapping.ok() ? mapping->ToString()
                                   : mapping.status().ToString())
                  << "\n";
      } else if (what == "instance" && tokens.size() == 3) {
        auto db = engine.repo().GetInstance(tokens[2]);
        std::cout << (db.ok() ? db->ToString() : db.status().ToString())
                  << "\n";
      } else {
        std::cout << "usage: show schemas|mappings|instances|schema <n>|"
                     "mapping <n>|instance <n>\n";
      }
      continue;
    }
    if (cmd == "answer" && tokens.size() >= 4) {
      // answer <mapping> <source-instance> <query...>  — certain answers
      // over the mapping's target, computed on the source by rewriting.
      auto mapping = engine.repo().GetMapping(tokens[1]);
      auto db = engine.repo().GetInstance(tokens[2]);
      if (!mapping.ok() || !db.ok()) {
        std::cout << (mapping.ok() ? db.status() : mapping.status()) << "\n";
        continue;
      }
      // The query is the raw remainder of the line (spacing matters for
      // quoted strings).
      std::size_t at = line.find(tokens[2]);
      std::string query_text = line.substr(at + tokens[2].size());
      auto query = mm2::text::ParseQuery(query_text);
      if (!query.ok()) {
        std::cout << query.status() << "\n";
        continue;
      }
      // Query matching probes the instance's on-demand indexes; mirror the
      // probe traffic into the same `index.*` counters the chase feeds, so
      // `stats`/`explain` attribute it.
      mm2::instance::IndexStats probes0 = db->IndexStatsTotal();
      auto answers = mm2::rewrite::AnswerOnSource(*mapping, *query, *db);
      mm2::instance::IndexStats probes1 = db->IndexStatsTotal();
      mm2::obs::MetricsRegistry& metrics = engine.observability().metrics;
      metrics.GetCounter("index.probes")
          .Increment(probes1.probes - probes0.probes);
      metrics.GetCounter("index.probe_hits")
          .Increment(probes1.probe_hits - probes0.probe_hits);
      metrics.GetCounter("index.builds")
          .Increment(probes1.builds - probes0.builds);
      if (!answers.ok()) {
        std::cout << answers.status() << "\n";
        continue;
      }
      for (const auto& row : *answers) {
        std::cout << "  " << mm2::instance::TupleToString(row) << "\n";
      }
      std::cout << answers->size() << " answer(s)\n";
      continue;
    }
    if (cmd == "sql" && tokens.size() == 2) {
      auto mapping = engine.repo().GetMapping(tokens[1]);
      if (!mapping.ok()) {
        std::cout << mapping.status() << "\n";
        continue;
      }
      auto compiled = mm2::transgen::CompileRelationalMapping(*mapping);
      std::cout << (compiled.ok() ? compiled->ToString()
                                  : compiled.status().ToString())
                << "\n";
      continue;
    }

    // Everything else goes to the engine's script interpreter.
    auto log = engine.RunScript(line);
    if (!log.ok()) {
      std::cout << log.status() << "\n";
    } else {
      for (const std::string& entry : *log) std::cout << entry << "\n";
    }
  }
  if (stats_on_quit) {
    for (const std::string& metric_line :
         engine.observability().metrics.Snapshot().Lines()) {
      std::cout << metric_line << "\n";
    }
  }
  if (!trace_file.empty()) {
    mm2::Status written =
        engine.observability().tracer.WriteChromeJson(trace_file);
    std::cout << (written.ok() ? "trace written to " + trace_file
                               : written.ToString())
              << "\n";
    engine.observability().tracer.Disable();
  }
  std::cout << "\n";
  return 0;
}
