// Quickstart: the end-to-end mm2 pipeline on two small relational schemas.
//
//   1. define source and target schemas with the builder API;
//   2. Match proposes correspondences;
//   3. correspondences are interpreted as mapping constraints (tgds);
//   4. the runtime exchanges data through the mapping (chase);
//   5. certain answers are evaluated over the exchanged target.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "chase/chase.h"
#include "instance/instance.h"
#include "logic/mapping.h"
#include "match/correspondence.h"
#include "match/matcher.h"
#include "model/schema.h"
#include "runtime/runtime.h"

using mm2::instance::Instance;
using mm2::instance::Value;

namespace {

int Fail(const mm2::Status& status) {
  std::cerr << "error: " << status << std::endl;
  return 1;
}

}  // namespace

int main() {
  // --- 1. Schemas -----------------------------------------------------------
  mm2::model::Schema source =
      mm2::model::SchemaBuilder("CRM", mm2::model::Metamodel::kRelational)
          .Relation("Customer",
                    {{"CustomerId", mm2::model::DataType::Int64()},
                     {"FullName", mm2::model::DataType::String()},
                     {"City", mm2::model::DataType::String()}},
                    {"CustomerId"})
          .Build();
  mm2::model::Schema target =
      mm2::model::SchemaBuilder("Billing", mm2::model::Metamodel::kRelational)
          .Relation("Client",
                    {{"ClientId", mm2::model::DataType::Int64()},
                     {"Name", mm2::model::DataType::String()},
                     {"Town", mm2::model::DataType::String()}},
                    {"ClientId"})
          .Build();
  std::cout << source.ToString() << "\n\n" << target.ToString() << "\n\n";

  // --- 2. Match -------------------------------------------------------------
  mm2::match::MatchOptions options;
  options.thesaurus = {{"city", "town"}, {"customer", "client"},
                       {"fullname", "name"}};
  mm2::match::SchemaMatcher matcher(options);
  mm2::match::MatchResult proposals = matcher.Match(source, target);
  std::cout << "proposed correspondences:\n" << proposals.ToString() << "\n";

  // --- 3. Constraints -------------------------------------------------------
  // Keep the attribute-level proposals (the data architect's review step).
  std::vector<mm2::match::Correspondence> reviewed;
  for (const mm2::match::Correspondence& c : proposals.best) {
    if (!c.source.attribute.empty()) reviewed.push_back(c);
  }
  auto constraints = mm2::match::InterpretCorrespondences(
      source, "Customer", target, "Client", reviewed);
  if (!constraints.ok()) return Fail(constraints.status());
  std::cout << "mapping constraints:\n";
  for (const auto& c : *constraints) {
    std::cout << "  " << c.ToString() << "\n";
  }
  auto mapping = mm2::match::MappingFromConstraints("crm2billing", source,
                                                    target, *constraints);
  if (!mapping.ok()) return Fail(mapping.status());
  std::cout << "\n" << mapping->ToString() << "\n\n";

  // --- 4. Data exchange -----------------------------------------------------
  Instance db = Instance::EmptyFor(source);
  (void)db.Insert("Customer", {Value::Int64(1), Value::String("Ada Lovelace"),
                               Value::String("London")});
  (void)db.Insert("Customer", {Value::Int64(2), Value::String("Alan Turing"),
                               Value::String("Manchester")});

  mm2::runtime::ExchangeOptions exchange_options;
  exchange_options.track_provenance = true;
  auto exchanged = mm2::runtime::Exchange(*mapping, db, exchange_options);
  if (!exchanged.ok()) return Fail(exchanged.status());
  std::cout << "exchanged target instance:\n"
            << exchanged->target.ToString() << "\n";

  // --- 5. Query the target --------------------------------------------------
  mm2::logic::ConjunctiveQuery names;
  names.head = mm2::logic::Atom{"Q", {mm2::logic::Term::Var("n")}};
  names.body = {mm2::logic::Atom{"Client",
                                 {mm2::logic::Term::Var("id"),
                                  mm2::logic::Term::Var("n"),
                                  mm2::logic::Term::Var("t")}}};
  auto answers = mm2::chase::CertainAnswers(names, exchanged->target);
  if (!answers.ok()) return Fail(answers.status());
  std::cout << "certain answers to 'client names':\n";
  for (const auto& row : *answers) {
    std::cout << "  " << mm2::instance::TupleToString(row) << "\n";
  }
  return 0;
}
