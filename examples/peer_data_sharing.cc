// Peer-to-peer data sharing: the paper's Section 5 "Peer-to-peer" runtime
// requirement. Three peers hold the same student data under different
// schemas, connected by a chain of engineered mappings
//   Registrar => Department => WebPortal.
// A query posed against the portal schema is (a) answered by propagating
// it through the chain down to the registrar's data — no materialization —
// and (b) the chain is collapsed by Compose into a direct mapping, as the
// paper suggests a design tool would do, and both answers are compared.
//
// Build & run:  ./build/examples/peer_data_sharing
#include <iostream>
#include <set>

#include "chase/chase.h"
#include "compose/compose.h"
#include "logic/formula.h"
#include "model/schema.h"
#include "rewrite/rewrite.h"

using mm2::instance::Instance;
using mm2::instance::Value;
using mm2::logic::Atom;
using mm2::logic::Mapping;
using mm2::logic::Term;
using mm2::logic::Tgd;
using mm2::model::DataType;

namespace {

Term V(const char* name) { return Term::Var(name); }

int Fail(const mm2::Status& status) {
  std::cerr << "error: " << status << std::endl;
  return 1;
}

}  // namespace

int main() {
  // Peer 1: the registrar's system of record.
  mm2::model::Schema registrar =
      mm2::model::SchemaBuilder("Registrar", mm2::model::Metamodel::kRelational)
          .Relation("Enrolled", {{"StudentId", DataType::Int64()},
                                 {"Name", DataType::String()},
                                 {"Major", DataType::String()},
                                 {"Year", DataType::Int64()}},
                    {"StudentId"})
          .Build();
  // Peer 2: the department's view (splits identity from academics).
  mm2::model::Schema department =
      mm2::model::SchemaBuilder("Department",
                                mm2::model::Metamodel::kRelational)
          .Relation("Person", {{"Sid", DataType::Int64()},
                               {"Name", DataType::String()}},
                    {"Sid"})
          .Relation("Study", {{"Sid", DataType::Int64()},
                              {"Major", DataType::String()},
                              {"Year", DataType::Int64()}},
                    {"Sid"})
          .Build();
  // Peer 3: the web portal (flat listing, no year).
  mm2::model::Schema portal =
      mm2::model::SchemaBuilder("WebPortal", mm2::model::Metamodel::kRelational)
          .Relation("Listing", {{"Sid", DataType::Int64()},
                                {"Name", DataType::String()},
                                {"Major", DataType::String()}},
                    {"Sid"})
          .Build();

  // The two hops.
  Tgd hop1;
  hop1.body = {Atom{"Enrolled", {V("s"), V("n"), V("m"), V("y")}}};
  hop1.head = {Atom{"Person", {V("s"), V("n")}},
               Atom{"Study", {V("s"), V("m"), V("y")}}};
  Mapping reg_to_dept =
      Mapping::FromTgds("reg2dept", registrar, department, {hop1});
  Tgd hop2;
  hop2.body = {Atom{"Person", {V("s"), V("n")}},
               Atom{"Study", {V("s"), V("m"), V("y")}}};
  hop2.head = {Atom{"Listing", {V("s"), V("n"), V("m")}}};
  Mapping dept_to_portal =
      Mapping::FromTgds("dept2portal", department, portal, {hop2});
  std::cout << reg_to_dept.ToString() << "\n\n"
            << dept_to_portal.ToString() << "\n\n";

  // Only the registrar holds data.
  Instance db = Instance::EmptyFor(registrar);
  (void)db.Insert("Enrolled", {Value::Int64(1), Value::String("Ada"),
                               Value::String("CS"), Value::Int64(3)});
  (void)db.Insert("Enrolled", {Value::Int64(2), Value::String("Bob"),
                               Value::String("Math"), Value::Int64(1)});
  (void)db.Insert("Enrolled", {Value::Int64(3), Value::String("Cyd"),
                               Value::String("CS"), Value::Int64(2)});

  // The portal query: who studies CS?
  mm2::logic::ConjunctiveQuery q;
  q.head = Atom{"Q", {V("n")}};
  q.body = {Atom{"Listing",
                 {V("s"), V("n"), Term::Const(Value::String("CS"))}}};
  std::cout << "portal query: " << q.ToString() << "\n\n";

  // (a) Propagate through the chain.
  auto through_chain = mm2::rewrite::AnswerThroughChain(
      {reg_to_dept, dept_to_portal}, q, db);
  if (!through_chain.ok()) return Fail(through_chain.status());
  std::cout << "answers via chain propagation:\n";
  for (const auto& row : *through_chain) {
    std::cout << "  " << mm2::instance::TupleToString(row) << "\n";
  }

  // (b) Collapse the chain first (the design-time optimization the paper
  // describes), then exchange + query as a cross-check.
  auto collapsed = mm2::compose::Compose(reg_to_dept, dept_to_portal);
  if (!collapsed.ok()) return Fail(collapsed.status());
  std::cout << "\ncollapsed mapping (Registrar => WebPortal):\n"
            << collapsed->ToString() << "\n";
  auto exchanged = mm2::chase::RunChase(*collapsed, db);
  if (!exchanged.ok()) return Fail(exchanged.status());
  auto direct = mm2::chase::CertainAnswers(q, exchanged->target);
  if (!direct.ok()) return Fail(direct.status());

  std::set<mm2::instance::Tuple> a(through_chain->begin(),
                                   through_chain->end());
  std::set<mm2::instance::Tuple> b(direct->begin(), direct->end());
  std::cout << "\nchain propagation and collapsed-mapping answers agree: "
            << (a == b ? "yes" : "NO") << "\n";
  return 0;
}
