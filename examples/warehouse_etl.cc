// Warehouse ETL: the paper's Fig. 4 scenario.
//
// A snowflake source (Empl -> Addr) must load a flat warehouse table
// (Staff). The data architect only draws correspondences; because both
// schemas are snowflakes with a root correspondence, each correspondence
// has an unambiguous interpretation as the equality of two project-join
// expressions (Fig. 4's constraints 1-3). The engine interprets them,
// builds the mapping, loads the warehouse by data exchange with key
// enforcement, and answers a provenance query about a loaded row.
//
// Build & run:  ./build/examples/warehouse_etl
#include <iostream>

#include "logic/formula.h"
#include "match/correspondence.h"
#include "model/schema.h"
#include "runtime/runtime.h"

using mm2::instance::Instance;
using mm2::instance::Value;
using mm2::model::DataType;

namespace {

int Fail(const mm2::Status& status) {
  std::cerr << "error: " << status << std::endl;
  return 1;
}

}  // namespace

int main() {
  // Fig. 4's schemas.
  mm2::model::Schema source =
      mm2::model::SchemaBuilder("OLTP", mm2::model::Metamodel::kRelational)
          .Relation("Empl", {{"EID", DataType::Int64()},
                             {"Name", DataType::String()},
                             {"Tel", DataType::String()},
                             {"AID", DataType::Int64()}},
                    {"EID"})
          .Relation("Addr", {{"AID", DataType::Int64()},
                             {"City", DataType::String()},
                             {"Zip", DataType::String()}},
                    {"AID"})
          .ForeignKey("Empl", {"AID"}, "Addr", {"AID"})
          .Build();
  mm2::model::Schema warehouse =
      mm2::model::SchemaBuilder("DW", mm2::model::Metamodel::kRelational)
          .Relation("Staff", {{"SID", DataType::Int64()},
                              {"Name", DataType::String()},
                              {"BirthDate", DataType::Date()},
                              {"City", DataType::String()}},
                    {"SID"})
          .Build();

  // The architect draws three correspondences (Fig. 4's arrows).
  std::vector<mm2::match::Correspondence> correspondences = {
      {{"Empl", "EID"}, {"Staff", "SID"}, 1.0},
      {{"Empl", "Name"}, {"Staff", "Name"}, 1.0},
      {{"Addr", "City"}, {"Staff", "City"}, 1.0},
  };

  auto constraints = mm2::match::InterpretCorrespondences(
      source, "Empl", warehouse, "Staff", correspondences);
  if (!constraints.ok()) return Fail(constraints.status());
  std::cout << "interpreted constraints (Fig. 4):\n";
  for (const auto& c : *constraints) {
    std::cout << "  " << c.ToString() << "\n";
  }

  auto mapping = mm2::match::MappingFromConstraints("etl", source, warehouse,
                                                    *constraints);
  if (!mapping.ok()) return Fail(mapping.status());

  // Key constraint on Staff so per-correspondence contributions merge into
  // one row per employee.
  using mm2::logic::Atom;
  using mm2::logic::Egd;
  using mm2::logic::Term;
  for (const char* left : {"n1", "b1", "c1"}) {
    Egd key;
    key.body = {
        Atom{"Staff", {Term::Var("s"), Term::Var("n1"), Term::Var("b1"),
                       Term::Var("c1")}},
        Atom{"Staff", {Term::Var("s"), Term::Var("n2"), Term::Var("b2"),
                       Term::Var("c2")}}};
    key.left = left;
    key.right = std::string(1, left[0]) + "2";
    mapping->AddTargetEgd(key);
  }
  std::cout << "\n" << mapping->ToString() << "\n\n";

  // Source data.
  Instance oltp = Instance::EmptyFor(source);
  (void)oltp.Insert("Empl", {Value::Int64(1), Value::String("Ada"),
                             Value::String("555-01"), Value::Int64(10)});
  (void)oltp.Insert("Empl", {Value::Int64(2), Value::String("Bob"),
                             Value::String("555-02"), Value::Int64(11)});
  (void)oltp.Insert("Empl", {Value::Int64(3), Value::String("Cyd"),
                             Value::String("555-03"), Value::Int64(10)});
  (void)oltp.Insert("Addr", {Value::Int64(10), Value::String("Berlin"),
                             Value::String("10115")});
  (void)oltp.Insert("Addr", {Value::Int64(11), Value::String("Paris"),
                             Value::String("75001")});

  // Load with provenance tracking.
  mm2::runtime::ExchangeOptions options;
  options.track_provenance = true;
  auto load = mm2::runtime::Exchange(*mapping, oltp, options);
  if (!load.ok()) return Fail(load.status());
  std::cout << "loaded warehouse (labeled nulls = unknown BirthDate):\n"
            << load->target.ToString() << "\n";
  std::cout << "chase stats: " << load->stats.tgd_firings << " rule firings, "
            << load->stats.nulls_created << " nulls, "
            << load->stats.egd_unifications << " key unifications\n\n";

  // Provenance: which OLTP rows produced Ada's warehouse row?
  mm2::chase::ChaseResult as_chase;
  as_chase.provenance = load->provenance;
  for (const mm2::instance::Tuple& row :
       load->target.Find("Staff")->tuples()) {
    if (row[1] == Value::String("Ada")) {
      mm2::chase::Fact fact{"Staff", row};
      std::cout << mm2::runtime::ExplainFact(as_chase, fact);
      std::cout << "lineage:";
      for (const mm2::chase::Fact& f :
           mm2::runtime::Lineage(as_chase, fact)) {
        std::cout << " " << f.ToString();
      }
      std::cout << "\n";
    }
  }
  return 0;
}
