# Empty dependencies file for bench_batchload.
# This may be replaced when dependencies are built.
