file(REMOVE_RECURSE
  "CMakeFiles/bench_batchload.dir/bench_batchload.cc.o"
  "CMakeFiles/bench_batchload.dir/bench_batchload.cc.o.d"
  "bench_batchload"
  "bench_batchload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batchload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
