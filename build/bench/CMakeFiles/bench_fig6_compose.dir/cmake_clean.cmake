file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_compose.dir/bench_fig6_compose.cc.o"
  "CMakeFiles/bench_fig6_compose.dir/bench_fig6_compose.cc.o.d"
  "bench_fig6_compose"
  "bench_fig6_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
