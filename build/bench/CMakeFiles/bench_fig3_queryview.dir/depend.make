# Empty dependencies file for bench_fig3_queryview.
# This may be replaced when dependencies are built.
