file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_queryview.dir/bench_fig3_queryview.cc.o"
  "CMakeFiles/bench_fig3_queryview.dir/bench_fig3_queryview.cc.o.d"
  "bench_fig3_queryview"
  "bench_fig3_queryview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_queryview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
