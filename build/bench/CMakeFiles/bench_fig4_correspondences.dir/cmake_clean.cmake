file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_correspondences.dir/bench_fig4_correspondences.cc.o"
  "CMakeFiles/bench_fig4_correspondences.dir/bench_fig4_correspondences.cc.o.d"
  "bench_fig4_correspondences"
  "bench_fig4_correspondences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_correspondences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
