# Empty dependencies file for bench_fig4_correspondences.
# This may be replaced when dependencies are built.
