file(REMOVE_RECURSE
  "CMakeFiles/bench_compose_scaling.dir/bench_compose_scaling.cc.o"
  "CMakeFiles/bench_compose_scaling.dir/bench_compose_scaling.cc.o.d"
  "bench_compose_scaling"
  "bench_compose_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compose_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
