# Empty dependencies file for bench_compose_scaling.
# This may be replaced when dependencies are built.
