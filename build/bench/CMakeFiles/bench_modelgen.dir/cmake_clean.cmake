file(REMOVE_RECURSE
  "CMakeFiles/bench_modelgen.dir/bench_modelgen.cc.o"
  "CMakeFiles/bench_modelgen.dir/bench_modelgen.cc.o.d"
  "bench_modelgen"
  "bench_modelgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modelgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
