# Empty dependencies file for bench_modelgen.
# This may be replaced when dependencies are built.
