# Empty dependencies file for acyclicity_test.
# This may be replaced when dependencies are built.
