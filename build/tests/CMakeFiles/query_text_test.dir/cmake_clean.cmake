file(REMOVE_RECURSE
  "CMakeFiles/query_text_test.dir/query_text_test.cc.o"
  "CMakeFiles/query_text_test.dir/query_text_test.cc.o.d"
  "query_text_test"
  "query_text_test.pdb"
  "query_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
