# Empty dependencies file for oo_wrapper_test.
# This may be replaced when dependencies are built.
