file(REMOVE_RECURSE
  "CMakeFiles/oo_wrapper_test.dir/oo_wrapper_test.cc.o"
  "CMakeFiles/oo_wrapper_test.dir/oo_wrapper_test.cc.o.d"
  "oo_wrapper_test"
  "oo_wrapper_test.pdb"
  "oo_wrapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oo_wrapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
