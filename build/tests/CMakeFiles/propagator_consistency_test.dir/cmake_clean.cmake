file(REMOVE_RECURSE
  "CMakeFiles/propagator_consistency_test.dir/propagator_consistency_test.cc.o"
  "CMakeFiles/propagator_consistency_test.dir/propagator_consistency_test.cc.o.d"
  "propagator_consistency_test"
  "propagator_consistency_test.pdb"
  "propagator_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagator_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
