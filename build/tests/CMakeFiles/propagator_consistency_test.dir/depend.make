# Empty dependencies file for propagator_consistency_test.
# This may be replaced when dependencies are built.
