file(REMOVE_RECURSE
  "CMakeFiles/modelgen_test.dir/modelgen_test.cc.o"
  "CMakeFiles/modelgen_test.dir/modelgen_test.cc.o.d"
  "modelgen_test"
  "modelgen_test.pdb"
  "modelgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modelgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
