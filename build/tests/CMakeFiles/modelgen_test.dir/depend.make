# Empty dependencies file for modelgen_test.
# This may be replaced when dependencies are built.
