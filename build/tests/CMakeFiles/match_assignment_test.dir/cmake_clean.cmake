file(REMOVE_RECURSE
  "CMakeFiles/match_assignment_test.dir/match_assignment_test.cc.o"
  "CMakeFiles/match_assignment_test.dir/match_assignment_test.cc.o.d"
  "match_assignment_test"
  "match_assignment_test.pdb"
  "match_assignment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
