# Empty compiler generated dependencies file for mapping_text_test.
# This may be replaced when dependencies are built.
