file(REMOVE_RECURSE
  "CMakeFiles/mapping_text_test.dir/mapping_text_test.cc.o"
  "CMakeFiles/mapping_text_test.dir/mapping_text_test.cc.o.d"
  "mapping_text_test"
  "mapping_text_test.pdb"
  "mapping_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
