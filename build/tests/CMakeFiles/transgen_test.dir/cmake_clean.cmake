file(REMOVE_RECURSE
  "CMakeFiles/transgen_test.dir/transgen_test.cc.o"
  "CMakeFiles/transgen_test.dir/transgen_test.cc.o.d"
  "transgen_test"
  "transgen_test.pdb"
  "transgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
