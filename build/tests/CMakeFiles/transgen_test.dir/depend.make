# Empty dependencies file for transgen_test.
# This may be replaced when dependencies are built.
