file(REMOVE_RECURSE
  "CMakeFiles/instance_match_test.dir/instance_match_test.cc.o"
  "CMakeFiles/instance_match_test.dir/instance_match_test.cc.o.d"
  "instance_match_test"
  "instance_match_test.pdb"
  "instance_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
