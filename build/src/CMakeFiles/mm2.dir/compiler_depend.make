# Empty compiler generated dependencies file for mm2.
# This may be replaced when dependencies are built.
