
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/eval.cc" "src/CMakeFiles/mm2.dir/algebra/eval.cc.o" "gcc" "src/CMakeFiles/mm2.dir/algebra/eval.cc.o.d"
  "/root/repo/src/algebra/expr.cc" "src/CMakeFiles/mm2.dir/algebra/expr.cc.o" "gcc" "src/CMakeFiles/mm2.dir/algebra/expr.cc.o.d"
  "/root/repo/src/algebra/optimize.cc" "src/CMakeFiles/mm2.dir/algebra/optimize.cc.o" "gcc" "src/CMakeFiles/mm2.dir/algebra/optimize.cc.o.d"
  "/root/repo/src/chase/chase.cc" "src/CMakeFiles/mm2.dir/chase/chase.cc.o" "gcc" "src/CMakeFiles/mm2.dir/chase/chase.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mm2.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mm2.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/mm2.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/mm2.dir/common/strings.cc.o.d"
  "/root/repo/src/compose/compose.cc" "src/CMakeFiles/mm2.dir/compose/compose.cc.o" "gcc" "src/CMakeFiles/mm2.dir/compose/compose.cc.o.d"
  "/root/repo/src/diff/diff.cc" "src/CMakeFiles/mm2.dir/diff/diff.cc.o" "gcc" "src/CMakeFiles/mm2.dir/diff/diff.cc.o.d"
  "/root/repo/src/engine/engine.cc" "src/CMakeFiles/mm2.dir/engine/engine.cc.o" "gcc" "src/CMakeFiles/mm2.dir/engine/engine.cc.o.d"
  "/root/repo/src/instance/instance.cc" "src/CMakeFiles/mm2.dir/instance/instance.cc.o" "gcc" "src/CMakeFiles/mm2.dir/instance/instance.cc.o.d"
  "/root/repo/src/instance/value.cc" "src/CMakeFiles/mm2.dir/instance/value.cc.o" "gcc" "src/CMakeFiles/mm2.dir/instance/value.cc.o.d"
  "/root/repo/src/inverse/inverse.cc" "src/CMakeFiles/mm2.dir/inverse/inverse.cc.o" "gcc" "src/CMakeFiles/mm2.dir/inverse/inverse.cc.o.d"
  "/root/repo/src/logic/acyclicity.cc" "src/CMakeFiles/mm2.dir/logic/acyclicity.cc.o" "gcc" "src/CMakeFiles/mm2.dir/logic/acyclicity.cc.o.d"
  "/root/repo/src/logic/formula.cc" "src/CMakeFiles/mm2.dir/logic/formula.cc.o" "gcc" "src/CMakeFiles/mm2.dir/logic/formula.cc.o.d"
  "/root/repo/src/logic/implication.cc" "src/CMakeFiles/mm2.dir/logic/implication.cc.o" "gcc" "src/CMakeFiles/mm2.dir/logic/implication.cc.o.d"
  "/root/repo/src/logic/mapping.cc" "src/CMakeFiles/mm2.dir/logic/mapping.cc.o" "gcc" "src/CMakeFiles/mm2.dir/logic/mapping.cc.o.d"
  "/root/repo/src/logic/term.cc" "src/CMakeFiles/mm2.dir/logic/term.cc.o" "gcc" "src/CMakeFiles/mm2.dir/logic/term.cc.o.d"
  "/root/repo/src/match/correspondence.cc" "src/CMakeFiles/mm2.dir/match/correspondence.cc.o" "gcc" "src/CMakeFiles/mm2.dir/match/correspondence.cc.o.d"
  "/root/repo/src/match/matcher.cc" "src/CMakeFiles/mm2.dir/match/matcher.cc.o" "gcc" "src/CMakeFiles/mm2.dir/match/matcher.cc.o.d"
  "/root/repo/src/merge/merge.cc" "src/CMakeFiles/mm2.dir/merge/merge.cc.o" "gcc" "src/CMakeFiles/mm2.dir/merge/merge.cc.o.d"
  "/root/repo/src/model/schema.cc" "src/CMakeFiles/mm2.dir/model/schema.cc.o" "gcc" "src/CMakeFiles/mm2.dir/model/schema.cc.o.d"
  "/root/repo/src/model/type.cc" "src/CMakeFiles/mm2.dir/model/type.cc.o" "gcc" "src/CMakeFiles/mm2.dir/model/type.cc.o.d"
  "/root/repo/src/modelgen/modelgen.cc" "src/CMakeFiles/mm2.dir/modelgen/modelgen.cc.o" "gcc" "src/CMakeFiles/mm2.dir/modelgen/modelgen.cc.o.d"
  "/root/repo/src/rewrite/rewrite.cc" "src/CMakeFiles/mm2.dir/rewrite/rewrite.cc.o" "gcc" "src/CMakeFiles/mm2.dir/rewrite/rewrite.cc.o.d"
  "/root/repo/src/runtime/constraints.cc" "src/CMakeFiles/mm2.dir/runtime/constraints.cc.o" "gcc" "src/CMakeFiles/mm2.dir/runtime/constraints.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/CMakeFiles/mm2.dir/runtime/runtime.cc.o" "gcc" "src/CMakeFiles/mm2.dir/runtime/runtime.cc.o.d"
  "/root/repo/src/text/query.cc" "src/CMakeFiles/mm2.dir/text/query.cc.o" "gcc" "src/CMakeFiles/mm2.dir/text/query.cc.o.d"
  "/root/repo/src/text/sexpr.cc" "src/CMakeFiles/mm2.dir/text/sexpr.cc.o" "gcc" "src/CMakeFiles/mm2.dir/text/sexpr.cc.o.d"
  "/root/repo/src/transgen/relational.cc" "src/CMakeFiles/mm2.dir/transgen/relational.cc.o" "gcc" "src/CMakeFiles/mm2.dir/transgen/relational.cc.o.d"
  "/root/repo/src/transgen/transgen.cc" "src/CMakeFiles/mm2.dir/transgen/transgen.cc.o" "gcc" "src/CMakeFiles/mm2.dir/transgen/transgen.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/mm2.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/mm2.dir/workload/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
