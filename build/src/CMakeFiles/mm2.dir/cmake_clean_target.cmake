file(REMOVE_RECURSE
  "libmm2.a"
)
