# Empty compiler generated dependencies file for mm2_shell.
# This may be replaced when dependencies are built.
