file(REMOVE_RECURSE
  "CMakeFiles/mm2_shell.dir/mm2_shell.cc.o"
  "CMakeFiles/mm2_shell.dir/mm2_shell.cc.o.d"
  "mm2_shell"
  "mm2_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm2_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
