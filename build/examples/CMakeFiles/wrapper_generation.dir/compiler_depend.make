# Empty compiler generated dependencies file for wrapper_generation.
# This may be replaced when dependencies are built.
