file(REMOVE_RECURSE
  "CMakeFiles/wrapper_generation.dir/wrapper_generation.cc.o"
  "CMakeFiles/wrapper_generation.dir/wrapper_generation.cc.o.d"
  "wrapper_generation"
  "wrapper_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrapper_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
