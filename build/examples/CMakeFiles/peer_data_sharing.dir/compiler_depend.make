# Empty compiler generated dependencies file for peer_data_sharing.
# This may be replaced when dependencies are built.
