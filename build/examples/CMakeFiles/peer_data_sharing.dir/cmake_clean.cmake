file(REMOVE_RECURSE
  "CMakeFiles/peer_data_sharing.dir/peer_data_sharing.cc.o"
  "CMakeFiles/peer_data_sharing.dir/peer_data_sharing.cc.o.d"
  "peer_data_sharing"
  "peer_data_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_data_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
