# Empty dependencies file for warehouse_etl.
# This may be replaced when dependencies are built.
