file(REMOVE_RECURSE
  "CMakeFiles/warehouse_etl.dir/warehouse_etl.cc.o"
  "CMakeFiles/warehouse_etl.dir/warehouse_etl.cc.o.d"
  "warehouse_etl"
  "warehouse_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
